"""Differential testing: the three value engines must agree.

The library evaluates RTL in three independent ways:

* the word-level reference evaluator (:func:`repro.rtl.exprs.evaluate`),
* the cycle-accurate simulator (:class:`repro.sim.Simulator`),
* the bit-blasted AIG (:mod:`repro.aig`), as used by the formal engine.

These property-based tests generate random expressions / random pipelines and
check that all three engines compute identical values.  Any disagreement
would point at a soundness bug in the formal flow, so this is one of the most
important invariants of the code base.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG
from repro.aig.bitblast import BitBlaster
from repro.rtl import elaborate_source, exprs
from repro.sim import Simulator
from repro.utils.bitvec import from_bits, mask, to_bits


# --------------------------------------------------------------------------- #
# Random expression generator
# --------------------------------------------------------------------------- #

_BINOPS = [
    exprs.BinaryOp.AND, exprs.BinaryOp.OR, exprs.BinaryOp.XOR,
    exprs.BinaryOp.ADD, exprs.BinaryOp.SUB, exprs.BinaryOp.MUL,
]
_CMPOPS = [exprs.BinaryOp.EQ, exprs.BinaryOp.NE, exprs.BinaryOp.ULT, exprs.BinaryOp.UGE]
_UNOPS = [exprs.UnaryOp.NOT, exprs.UnaryOp.NEG, exprs.UnaryOp.RED_OR, exprs.UnaryOp.RED_XOR]


def _random_expr(rng: random.Random, variables, depth: int) -> exprs.Expr:
    width = 8
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.5:
            return exprs.const(rng.getrandbits(width), width)
        return exprs.ref(rng.choice(variables), width)
    choice = rng.random()
    if choice < 0.45:
        op = rng.choice(_BINOPS)
        return exprs.Binop(width, op,
                           _random_expr(rng, variables, depth - 1),
                           _random_expr(rng, variables, depth - 1))
    if choice < 0.60:
        op = rng.choice(_CMPOPS)
        comparison = exprs.Binop(1, op,
                                 _random_expr(rng, variables, depth - 1),
                                 _random_expr(rng, variables, depth - 1))
        # Widen back to 8 bits so compositions keep a uniform width.
        return exprs.concat((exprs.const(0, width - 1), comparison))
    if choice < 0.75:
        op = rng.choice(_UNOPS)
        operand = _random_expr(rng, variables, depth - 1)
        if op in (exprs.UnaryOp.NOT, exprs.UnaryOp.NEG):
            return exprs.Unop(width, op, operand)
        return exprs.concat((exprs.const(0, width - 1), exprs.Unop(1, op, operand)))
    if choice < 0.9:
        return exprs.mux(
            exprs.reduce_or(_random_expr(rng, variables, depth - 1)),
            _random_expr(rng, variables, depth - 1),
            _random_expr(rng, variables, depth - 1),
        )
    return exprs.slice_expr(
        exprs.concat((_random_expr(rng, variables, depth - 1),
                      _random_expr(rng, variables, depth - 1))),
        rng.randrange(4), width,
    )


class TestExpressionEnginesAgree:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_reference_vs_aig(self, seed):
        rng = random.Random(seed)
        variables = ["a", "b", "c"]
        expr = _random_expr(rng, variables, depth=4)
        assignment = {name: rng.getrandbits(8) for name in variables}

        reference = exprs.evaluate(expr, lambda name: assignment[name])

        aig = AIG()
        blaster = BitBlaster(aig)
        env = {name: blaster.fresh_vector(name, 8) for name in variables}
        vector = blaster.blast(expr, env)
        input_values = {}
        for name in variables:
            for literal, bit in zip(env[name], to_bits(assignment[name], 8)):
                input_values[literal >> 1] = bit
        assert from_bits(aig.evaluate(vector, input_values)) == reference

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_substitution_preserves_value(self, seed):
        rng = random.Random(seed)
        variables = ["a", "b", "c"]
        expr = _random_expr(rng, variables, depth=3)
        assignment = {name: rng.getrandbits(8) for name in variables}
        substituted = exprs.substitute(
            expr, {name: exprs.const(value, 8) for name, value in assignment.items()}
        )
        assert exprs.evaluate(substituted, lambda name: 0) == exprs.evaluate(
            expr, lambda name: assignment[name]
        )


class TestSimulatorVsFormalModel:
    """The simulator and the symbolic transition encoding must agree cycle by cycle."""

    SOURCE = """
module dp(input clk, input [7:0] a, input [7:0] b, output [7:0] y);
  reg [7:0] r1;
  reg [7:0] r2;
  reg [7:0] r3;
  always @(posedge clk) begin
    r1 <= a + (b ^ 8'h3c);
    r2 <= (r1 << 1) | (a & 8'h0f);
    r3 <= (r2 > r1) ? r2 - r1 : r1 - r2;
  end
  assign y = r3 ^ r1;
endmodule
"""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_two_cycle_agreement(self, seed):
        rng = random.Random(seed)
        module = elaborate_source(self.SOURCE, "dp")
        initial = {name: rng.getrandbits(8) for name in module.registers}
        stimuli = [
            {"a": rng.getrandbits(8), "b": rng.getrandbits(8)},
            {"a": rng.getrandbits(8), "b": rng.getrandbits(8)},
        ]

        # Simulator path.
        simulator = Simulator(module, initial_state=dict(initial))
        for stimulus in stimuli:
            simulator.step(stimulus)
        simulated_state = simulator.state()

        # Symbolic path: unroll two cycles, bind the same initial state and inputs.
        from repro.ipc.transition import TransitionEncoder

        encoder = TransitionEncoder(module)
        frames = encoder.unroll("diff", 2)
        blaster = encoder.blaster
        for name, value in initial.items():
            frames[0].bind_leaf(name, blaster.constant(value, module.width_of(name)))
        for time, stimulus in enumerate(stimuli):
            for name, value in stimulus.items():
                frames[time].bind_leaf(name, blaster.constant(value, module.width_of(name)))
        for register in module.registers:
            vector = frames[2].vector_of(register)
            symbolic_value = from_bits(encoder.aig.evaluate(vector, {}))
            assert symbolic_value == simulated_state[register], register
