"""Tests for the session-oriented public API (`repro.api`).

Covers the Design loaders, event ordering and streaming semantics of
DetectionSession.iter_results(), the subscriber bus, batch sessions, and the
deprecation shim of detect_trojans().
"""

import warnings

import pytest

from repro.api import (
    BatchReport,
    BatchSession,
    CexFound,
    ClassProven,
    Design,
    DetectionConfig,
    DetectionSession,
    PropertyScheduled,
    RunEvent,
    RunFinished,
    RunStarted,
    StructurallyDischarged,
    Waiver,
    parse_input_list,
)
from repro.core.events import CexWaived, class_label
from repro.errors import ConfigError, DesignError, ReproError

PIPELINE_SOURCE = """
module pipe(
  input clk,
  input  [7:0] din,
  output [7:0] dout
);
  reg [7:0] s1;
  reg [7:0] s2;
  always @(posedge clk) begin
    s1 <= din ^ 8'h5a;
    s2 <= s1 + 8'h01;
  end
  assign dout = s2;
endmodule
"""


class TestDesignLoaders:
    def test_from_source(self):
        design = Design.from_source(PIPELINE_SOURCE, top="pipe")
        assert design.name == "pipe"
        assert design.origin == "source"
        assert "din" in design.data_inputs

    def test_from_source_custom_name(self):
        design = Design.from_source(PIPELINE_SOURCE, top="pipe", name="vendor-ip")
        assert design.name == "vendor-ip"

    def test_from_source_requires_top(self):
        with pytest.raises(DesignError):
            Design.from_source(PIPELINE_SOURCE, top="")

    def test_from_file(self, tmp_path):
        path = tmp_path / "pipe.v"
        path.write_text(PIPELINE_SOURCE)
        design = Design.from_file(str(path), top="pipe")
        assert design.module.name == "pipe"
        assert design.origin.startswith("file:")

    def test_from_file_missing_file_raises_design_error(self):
        with pytest.raises(DesignError, match="cannot read"):
            Design.from_file("/nonexistent/file.v", top="pipe")

    def test_from_benchmark_carries_metadata(self):
        design = Design.from_benchmark("BasicRSA-HT-FREE")
        assert design.origin == "benchmark"
        assert design.data_inputs == ("ds", "indata", "inExp", "inMod")
        assert design.recommended_waivers

    def test_from_benchmark_unknown_name(self):
        with pytest.raises(DesignError, match="unknown benchmark"):
            Design.from_benchmark("AES-T0")

    def test_from_module(self, pipeline_module):
        design = Design.from_module(pipeline_module)
        assert design.module is pipeline_module

    def test_clock_only_module_still_loads_and_runs(self):
        # A module with no traceable data inputs is not a loader error: the
        # flow still runs and the coverage check flags everything uncovered
        # (matching the pre-session detect_trojans behaviour).
        source = """
        module ticker(input clk, output o);
          reg r;
          always @(posedge clk) r <= ~r;
          assign o = r;
        endmodule
        """
        design = Design.from_source(source, top="ticker")
        report = DetectionSession(design).run()
        assert report.verdict.value == "uncovered-signals"

    def test_analysis_is_cached_per_input_set(self):
        design = Design.from_source(PIPELINE_SOURCE, top="pipe")
        assert design.analysis() is design.analysis()
        assert design.analysis(["din"]) is design.analysis(["din"])

    def test_analysis_rejects_unknown_inputs(self):
        design = Design.from_source(PIPELINE_SOURCE, top="pipe")
        with pytest.raises(DesignError, match="available inputs"):
            design.analysis(["nonexistent_signal"])

    def test_default_config_uses_recommended_waivers(self):
        design = Design.from_benchmark("BasicRSA-HT-FREE")
        config = design.default_config()
        assert set(config.waived_signals()) == set(design.recommended_waivers)
        bare = design.default_config(include_recommended_waivers=False)
        assert bare.waivers == []

    def test_describe_mentions_name_and_inputs(self):
        design = Design.from_source(PIPELINE_SOURCE, top="pipe")
        text = design.describe()
        assert "pipe" in text and "din" in text


class TestParseInputList:
    def test_parses_and_strips(self):
        assert parse_input_list(" a , b,c ") == ["a", "b", "c"]

    def test_rejects_empty_entries(self):
        with pytest.raises(ConfigError, match="empty signal name"):
            parse_input_list("a,,b")
        with pytest.raises(ConfigError, match="empty signal name"):
            parse_input_list("a,b,")

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError, match="duplicate"):
            parse_input_list("a,b,a")

    def test_rejects_blank(self):
        with pytest.raises(ConfigError):
            parse_input_list("   ")


class TestEventStreaming:
    def test_events_cover_every_class_in_order(self, pipeline_module):
        session = DetectionSession(pipeline_module)
        events = list(session.iter_results())

        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunFinished)

        scheduled = [event for event in events if isinstance(event, PropertyScheduled)]
        depth = events[0].scheduled_classes
        assert [event.index for event in scheduled] == list(range(depth))
        assert scheduled[0].kind == "init" and scheduled[0].label == "init property"

        # Every scheduled class gets exactly one terminal event.
        for event in scheduled:
            terminals = [
                e for e in events
                if isinstance(e, (StructurallyDischarged, ClassProven))
                or (isinstance(e, CexFound) and not e.auto_resolvable)
                if e.index == event.index
            ]
            assert len(terminals) == 1, class_label(event.index)

    def test_failing_run_emits_cex_found(self, trojaned_module):
        session = DetectionSession(trojaned_module)
        events = list(session.iter_results())
        found = [event for event in events if isinstance(event, CexFound)]
        assert found and not found[-1].auto_resolvable
        assert found[-1].diagnosis is not None
        assert session.report.trojan_detected

    def test_streaming_is_lazy(self, trojaned_module):
        """Events arrive before the run is complete; early abort is possible."""
        session = DetectionSession(trojaned_module)
        iterator = session.iter_results()
        first = next(iterator)
        assert isinstance(first, RunStarted)
        assert session.report is None  # the run has not finished yet
        iterator.close()  # early abort: no RunFinished was consumed
        assert session.report is None

    def test_run_matches_iter_results_report(self, pipeline_module):
        streamed = DetectionSession(pipeline_module)
        list(streamed.iter_results())
        blocking = DetectionSession(pipeline_module).run()
        assert streamed.report.verdict == blocking.verdict
        assert [o.label for o in streamed.report.outcomes] == [
            o.label for o in blocking.outcomes
        ]

    def test_spurious_resolution_emits_waived_events(self):
        # A design whose later class depends on an earlier class's register
        # through cross-class fanin, provoking a reorder-resolvable CEX in
        # strict mode.
        source = """
        module cross(input clk, input [3:0] din, output [3:0] dout);
          reg [3:0] a;
          reg [3:0] b;
          always @(posedge clk) begin
            a <= din + 4'h1;
            b <= a ^ din;
          end
          assign dout = b;
        endmodule
        """
        design = Design.from_source(source, top="cross")
        config = DetectionConfig(cumulative_assumptions=False)
        session = DetectionSession(design, config=config)
        events = list(session.iter_results())
        waived = [event for event in events if isinstance(event, CexWaived)]
        if waived:  # resolution happened: a CexFound(auto_resolvable) preceded it
            index = events.index(waived[0])
            assert isinstance(events[index - 1], CexFound)
            assert events[index - 1].auto_resolvable
        assert session.report.is_secure or session.report.trojan_detected

    def test_subscriber_bus_sees_all_events(self, pipeline_module):
        session = DetectionSession(pipeline_module)
        seen = []
        unsubscribe = session.subscribe(seen.append)
        streamed = list(session.iter_results())
        assert seen == streamed

        unsubscribe()
        list(session.iter_results())
        assert len(seen) == len(streamed)  # no longer receiving

    def test_typed_subscription(self, pipeline_module):
        session = DetectionSession(pipeline_module)
        finished = []
        session.subscribe(finished.append, RunFinished)
        report = session.run()
        assert len(finished) == 1
        assert finished[0].report is report

    def test_run_finished_subscriber_sees_session_report(self, pipeline_module):
        session = DetectionSession(pipeline_module)
        seen = []
        session.subscribe(lambda event: seen.append(session.report), RunFinished)
        report = session.run()
        assert seen == [report]  # report is set before the event is dispatched


class TestDetectionSession:
    def test_run_returns_report_and_caches_it(self, pipeline_module):
        session = DetectionSession(pipeline_module)
        report = session.run()
        assert report.is_secure
        assert session.report is report

    def test_accepts_design_or_module(self, pipeline_module):
        from_module = DetectionSession(pipeline_module).run()
        from_design = DetectionSession(Design.from_module(pipeline_module)).run()
        assert from_module.verdict == from_design.verdict

    def test_report_carries_design_name(self):
        design = Design.from_source(PIPELINE_SOURCE, top="pipe", name="ip-under-audit")
        report = DetectionSession(design).run()
        assert report.design == "ip-under-audit"

    def test_context_manager(self, pipeline_module):
        with DetectionSession(pipeline_module) as session:
            assert session.run().is_secure

    def test_detect_trojans_shim_warns_and_delegates(self, pipeline_module):
        from repro import detect_trojans

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = detect_trojans(pipeline_module)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert report.is_secure


class TestBatchSession:
    def test_batch_over_modules(self, pipeline_module, trojaned_module):
        batch = BatchSession([pipeline_module, trojaned_module])
        report = batch.run()
        assert report.designs_audited == 2
        assert not report.all_secure
        assert len(report.flagged_designs()) == 1
        assert report.verdict_counts()["secure"] == 1

    def test_batch_by_benchmark_name(self):
        batch = BatchSession(["RS232-HT-FREE"])
        report = batch.run()
        assert report.all_secure
        assert report.report_for("RS232-HT-FREE").design == "RS232-HT-FREE"

    def test_iter_reports_is_lazy(self, pipeline_module, trojaned_module):
        batch = BatchSession([pipeline_module, trojaned_module])
        iterator = batch.iter_reports()
        design, first = next(iterator)
        assert first.is_secure
        iterator.close()
        assert batch.report is None  # run() never completed

    def test_shared_config_template_fills_design_inputs(self):
        template = DetectionConfig(solver_backend="python")
        batch = BatchSession(["BasicRSA-HT-FREE"], config=template)
        design = batch.designs[0]
        effective = batch.config_for(design)
        assert effective.inputs == list(design.data_inputs)
        assert effective.solver_backend == "python"
        # recommended waivers are appended on top of the template
        assert set(design.recommended_waivers) <= set(effective.waived_signals())

    def test_recommended_waivers_can_be_disabled(self):
        batch = BatchSession(["BasicRSA-HT-FREE"], use_recommended_waivers=False)
        effective = batch.config_for(batch.designs[0])
        assert effective.waivers == []

    def test_template_waivers_are_not_duplicated(self):
        design = Design.from_benchmark("BasicRSA-HT-FREE")
        signal = design.recommended_waivers[0]
        template = DetectionConfig(waivers=[Waiver(signal, "mine")])
        batch = BatchSession([design], config=template)
        effective = batch.config_for(design)
        assert effective.waived_signals().count(signal) == 1

    def test_batch_events_carry_design_names(self, pipeline_module):
        batch = BatchSession([pipeline_module])
        started = []
        batch.subscribe(started.append, RunStarted)
        batch.run()
        assert [event.design for event in started] == ["pipe"]

    def test_cumulative_solver_stats(self, trojaned_module):
        # simplify=False forces the CDCL path (the default preprocessing
        # falsifies the tampered class by simulation, with zero solver calls).
        batch = BatchSession(
            [trojaned_module, trojaned_module],
            config=DetectionConfig(simplify=False),
        )
        report = batch.run()
        stats = report.solver_stats()
        assert stats["solver_calls"] == sum(r.solver_calls for r in report.reports)
        assert stats["solver_calls"] > 0

    def test_batch_report_json_round_trip(self, pipeline_module, trojaned_module):
        batch = BatchSession([pipeline_module, trojaned_module])
        report = batch.run()
        restored = BatchReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.flagged_designs() == report.flagged_designs()

    def test_batch_report_rejects_unknown_schema(self):
        with pytest.raises(ReproError, match="schema_version"):
            BatchReport.from_dict({"schema_version": 999, "reports": []})

    def test_batch_report_rejects_non_dict(self):
        with pytest.raises(ReproError, match="dict"):
            BatchReport.from_json("[1, 2]")

    def test_summary_lists_every_design(self, pipeline_module, trojaned_module):
        batch = BatchSession([pipeline_module, trojaned_module])
        summary = batch.run().summary()
        assert "2 design(s)" in summary
        assert "secure" in summary and "trojan-suspected" in summary


class TestEventBase:
    def test_all_events_are_run_events(self, trojaned_module):
        for event in DetectionSession(trojaned_module).iter_results():
            assert isinstance(event, RunEvent)
            assert event.design == "pipe"
