"""Tests for the And-Inverter Graph."""

import itertools

from hypothesis import given, strategies as st

from repro.aig.aig import AIG, FALSE, TRUE, negate


class TestSimplificationRules:
    def test_and_with_false(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_(a, FALSE) == FALSE

    def test_and_with_true(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_(a, TRUE) == a

    def test_and_idempotent(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_(a, a) == a

    def test_and_with_complement_is_false(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_(a, negate(a)) == FALSE

    def test_structural_hashing_shares_nodes(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        first = aig.and_(a, b)
        second = aig.and_(b, a)
        assert first == second
        assert aig.num_and_nodes == 1

    def test_mux_constant_select(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert aig.mux(TRUE, a, b) == a
        assert aig.mux(FALSE, a, b) == b

    def test_mux_same_branches(self):
        aig = AIG()
        s, a = aig.add_input("s"), aig.add_input("a")
        assert aig.mux(s, a, a) == a

    def test_or_many_short_circuits_on_true(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.or_many([a, TRUE, aig.add_input("b")]) == TRUE

    def test_and_many_short_circuits_on_false(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_many([a, FALSE]) == FALSE

    def test_input_names_recorded(self):
        aig = AIG()
        literal = aig.add_input("my_signal[3]")
        assert aig.input_name(literal >> 1) == "my_signal[3]"


class TestEvaluation:
    def _truth_table(self, build):
        """Evaluate a two-input function built over an AIG for all input values."""
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        root = build(aig, a, b)
        table = {}
        for va, vb in itertools.product((0, 1), repeat=2):
            table[(va, vb)] = aig.evaluate([root], {a >> 1: va, b >> 1: vb})[0]
        return table

    def test_and_truth_table(self):
        table = self._truth_table(lambda g, a, b: g.and_(a, b))
        assert table == {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}

    def test_or_truth_table(self):
        table = self._truth_table(lambda g, a, b: g.or_(a, b))
        assert table == {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}

    def test_xor_truth_table(self):
        table = self._truth_table(lambda g, a, b: g.xor(a, b))
        assert table == {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}

    def test_xnor_truth_table(self):
        table = self._truth_table(lambda g, a, b: g.xnor(a, b))
        assert table == {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}

    def test_mux_truth_table(self):
        aig = AIG()
        s, a, b = aig.add_input("s"), aig.add_input("a"), aig.add_input("b")
        root = aig.mux(s, a, b)
        for vs, va, vb in itertools.product((0, 1), repeat=3):
            expected = va if vs else vb
            value = aig.evaluate([root], {s >> 1: vs, a >> 1: va, b >> 1: vb})[0]
            assert value == expected

    def test_constants_evaluate(self):
        aig = AIG()
        assert aig.evaluate([TRUE, FALSE], {}) == [1, 0]

    def test_missing_input_defaults_to_zero(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.evaluate([a], {}) == [0]

    def test_cone_nodes_topological(self):
        aig = AIG()
        a, b, c = (aig.add_input(x) for x in "abc")
        ab = aig.and_(a, b)
        root = aig.and_(ab, c)
        order = aig.cone_nodes([root])
        assert order.index(ab >> 1) < order.index(root >> 1)

    @given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()), min_size=1, max_size=16))
    def test_composed_expression_matches_python(self, rows):
        aig = AIG()
        a, b, c = (aig.add_input(x) for x in "abc")
        # f = (a AND b) XOR (NOT c)
        root = aig.xor(aig.and_(a, b), negate(c))
        for va, vb, vc in rows:
            expected = int((va and vb) != (not vc))
            value = aig.evaluate(
                [root], {a >> 1: int(va), b >> 1: int(vb), c >> 1: int(vc)}
            )[0]
            assert value == expected


def _random_cone(rng, num_inputs=5, num_gates=25):
    """A random AIG cone over ``num_inputs`` inputs; returns (aig, root)."""
    aig = AIG()
    literals = [aig.add_input(f"i{k}") for k in range(num_inputs)]
    for _ in range(num_gates):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_(a, b))
    return aig, literals[-1] ^ rng.randint(0, 1)


class TestEvaluateWords:
    @given(st.integers(min_value=0, max_value=2**32))
    def test_matches_scalar_evaluate_on_random_cones(self, seed):
        import random

        rng = random.Random(seed)
        aig, root = _random_cone(rng)
        inputs = aig.inputs()
        num_patterns = 16
        words = {node: rng.getrandbits(num_patterns) for node in inputs}
        mask = (1 << num_patterns) - 1
        word = aig.evaluate_words([root], words, mask)[0]
        for index in range(num_patterns):
            scalar = {node: (words[node] >> index) & 1 for node in inputs}
            expected = aig.evaluate([root], scalar)[0]
            assert (word >> index) & 1 == expected

    def test_constant_roots(self):
        aig = AIG()
        aig.add_input("a")
        mask = (1 << 8) - 1
        assert aig.evaluate_words([TRUE], {}, mask) == [mask]
        assert aig.evaluate_words([FALSE], {}, mask) == [0]

    def test_untracked_inputs_default_to_zero(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        node = aig.and_(a, b)
        mask = 0b1111
        assert aig.evaluate_words([node], {a >> 1: mask}, mask) == [0]


class TestNodeCounting:
    def test_num_and_nodes_counts_only_and_gates(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert aig.num_and_nodes == 0
        aig.and_(a, b)
        assert aig.num_and_nodes == 1
        assert aig.num_nodes == 4  # constant + 2 inputs + 1 AND
