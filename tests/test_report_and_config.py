"""Tests for configuration objects, report rendering and the error hierarchy."""

import pytest

from repro.core import DetectionConfig, Verdict, Waiver, detect_trojans
from repro.core.report import DetectionReport
from repro.errors import (
    BitblastError,
    DesignError,
    ElaborationError,
    PropertyError,
    ReproError,
    SimulationError,
    SolverError,
    UnsupportedFeatureError,
    VerilogSyntaxError,
)


class TestDetectionConfig:
    def test_defaults(self):
        config = DetectionConfig()
        assert config.cumulative_assumptions
        assert config.assume_inputs_at_prove_time
        assert config.stop_at_first_failure
        assert config.inputs is None
        assert config.waivers == []

    def test_waived_signals(self):
        config = DetectionConfig(waivers=[Waiver("a"), Waiver("b", "why")])
        assert config.waived_signals() == ["a", "b"]

    def test_with_waivers_returns_extended_copy(self):
        base = DetectionConfig(waivers=[Waiver("a")])
        extended = base.with_waivers("b", "c", reason="review")
        assert base.waived_signals() == ["a"]
        assert extended.waived_signals() == ["a", "b", "c"]
        assert extended.waivers[-1].reason == "review"

    def test_waiver_is_frozen(self):
        waiver = Waiver("x")
        with pytest.raises(Exception):
            waiver.signal = "y"  # type: ignore[misc]


class TestDetectionReport:
    def test_report_fields_for_secure_run(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        assert isinstance(report, DetectionReport)
        assert report.design == "pipe"
        assert report.verdict is Verdict.SECURE
        assert report.failing_outcome() is None
        assert str(report)

    def test_property_runtime_map_labels(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        labels = set(report.property_runtimes())
        assert labels == {"init property", "fanout property 1"}

    def test_summary_mentions_spurious_when_present(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        report.spurious_resolved = 3
        assert "spurious" in report.summary()

    def test_verdict_str(self):
        assert str(Verdict.SECURE) == "secure"
        assert str(Verdict.TROJAN_SUSPECTED) == "trojan-suspected"

    def test_outcome_labels(self, trojaned_module):
        report = detect_trojans(trojaned_module)
        assert report.outcomes[0].label == "init property"
        assert report.outcomes[-1].label.startswith("fanout property")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            VerilogSyntaxError,
            ElaborationError,
            UnsupportedFeatureError,
            BitblastError,
            SolverError,
            PropertyError,
            SimulationError,
            DesignError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_syntax_error_carries_location(self):
        error = VerilogSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error) and "col 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_syntax_error_without_location(self):
        assert "bad" in str(VerilogSyntaxError("bad"))
