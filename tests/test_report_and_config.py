"""Tests for configuration objects, report rendering/serialization and errors."""

import json

import pytest

from repro.core import DetectionConfig, Verdict, Waiver, detect_trojans
from repro.core.report import SCHEMA_VERSION, DetectionReport
from repro.errors import (
    BitblastError,
    ConfigError,
    DesignError,
    ElaborationError,
    PropertyError,
    ReproError,
    SimulationError,
    SolverError,
    UnsupportedFeatureError,
    VerilogSyntaxError,
)


class TestDetectionConfig:
    def test_defaults(self):
        config = DetectionConfig()
        assert config.cumulative_assumptions
        assert config.assume_inputs_at_prove_time
        assert config.stop_at_first_failure
        assert config.inputs is None
        assert config.waivers == []

    def test_waived_signals(self):
        config = DetectionConfig(waivers=[Waiver("a"), Waiver("b", "why")])
        assert config.waived_signals() == ["a", "b"]

    def test_with_waivers_returns_extended_copy(self):
        base = DetectionConfig(waivers=[Waiver("a")])
        extended = base.with_waivers("b", "c", reason="review")
        assert base.waived_signals() == ["a"]
        assert extended.waived_signals() == ["a", "b", "c"]
        assert extended.waivers[-1].reason == "review"

    def test_with_waivers_preserves_execution_settings(self):
        base = DetectionConfig(jobs=4, cache_dir="/tmp/c", use_cache=False)
        extended = base.with_waivers("x")
        assert extended.jobs == 4
        assert extended.cache_dir == "/tmp/c"
        assert not extended.use_cache

    def test_execution_defaults(self):
        config = DetectionConfig()
        assert config.jobs == 1
        assert config.cache_dir is None
        assert config.use_cache

    def test_waiver_is_frozen(self):
        waiver = Waiver("x")
        with pytest.raises(Exception):
            waiver.signal = "y"  # type: ignore[misc]


class TestConfigValidation:
    """Misconfiguration fails at construction, not mid-run."""

    def test_unknown_solver_backend(self):
        with pytest.raises(ConfigError, match="unknown solver backend"):
            DetectionConfig(solver_backend="z3")

    def test_known_backends_accepted(self):
        assert DetectionConfig(solver_backend="auto").solver_backend == "auto"
        assert DetectionConfig(solver_backend="python").solver_backend == "python"

    def test_negative_max_class(self):
        with pytest.raises(ConfigError, match="max_class"):
            DetectionConfig(max_class=-1)
        assert DetectionConfig(max_class=0).max_class == 0

    def test_empty_input_name(self):
        with pytest.raises(ConfigError, match="non-empty"):
            DetectionConfig(inputs=["a", ""])

    def test_whitespace_input_name(self):
        with pytest.raises(ConfigError, match="whitespace"):
            DetectionConfig(inputs=[" a "])

    def test_duplicate_input_name(self):
        with pytest.raises(ConfigError, match="duplicate"):
            DetectionConfig(inputs=["a", "b", "a"])

    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)

    def test_invalid_jobs(self):
        with pytest.raises(ConfigError, match="jobs"):
            DetectionConfig(jobs=0)
        with pytest.raises(ConfigError, match="jobs"):
            DetectionConfig(jobs=-2)
        assert DetectionConfig(jobs=8).jobs == 8

    def test_empty_cache_dir(self):
        with pytest.raises(ConfigError, match="cache_dir"):
            DetectionConfig(cache_dir="   ")
        assert DetectionConfig(cache_dir="/tmp/cache").cache_dir == "/tmp/cache"

    @pytest.mark.parametrize("field", ["jobs", "max_class", "depth"])
    @pytest.mark.parametrize("value", [True, False])
    def test_bool_rejected_for_integer_fields(self, field, value):
        # bool is a subclass of int: jobs=True used to slip through the
        # isinstance(jobs, int) check and silently run with 1 worker.
        with pytest.raises(ConfigError, match=field):
            DetectionConfig(**{field: value})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="unknown detection mode"):
            DetectionConfig(mode="temporal")
        assert DetectionConfig(mode="sequential").mode == "sequential"
        assert DetectionConfig().mode == "combinational"

    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigError, match="depth"):
            DetectionConfig(depth=0)
        with pytest.raises(ConfigError, match="depth"):
            DetectionConfig(depth=-3)
        assert DetectionConfig(depth=25).depth == 25

    @pytest.mark.parametrize("field", ["split_conflicts", "split_depth"])
    def test_split_knobs_must_be_positive_integers(self, field):
        with pytest.raises(ConfigError, match=field):
            DetectionConfig(**{field: 0})
        with pytest.raises(ConfigError, match=field):
            DetectionConfig(**{field: -5})
        with pytest.raises(ConfigError, match=field):
            DetectionConfig(**{field: True})
        with pytest.raises(ConfigError, match=field):
            DetectionConfig(**{field: "2"})

    def test_split_must_be_bool(self):
        with pytest.raises(ConfigError, match="split"):
            DetectionConfig(split=1)
        assert DetectionConfig(split=False).split is False

    def test_split_depth_capped(self):
        # 2^depth cube tasks per split class: an accidental depth=30 would
        # fan a single class out into a billion solver calls.
        with pytest.raises(ConfigError, match="split_depth"):
            DetectionConfig(split_depth=11)
        assert DetectionConfig(split_depth=10).split_depth == 10

    def test_reset_values_validated(self):
        with pytest.raises(ConfigError, match="reset_values"):
            DetectionConfig(reset_values=[("count", 1)])
        with pytest.raises(ConfigError, match="register names"):
            DetectionConfig(reset_values={"": 1})
        with pytest.raises(ConfigError, match="reset value"):
            DetectionConfig(reset_values={"count": "3"})
        with pytest.raises(ConfigError, match="reset value"):
            DetectionConfig(reset_values={"count": True})
        assert DetectionConfig(reset_values={"count": 4}).reset_values == {"count": 4}


class TestReportSerialization:
    def test_secure_report_json_round_trip(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        data = report.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        restored = DetectionReport.from_dict(json.loads(report.to_json()))
        assert restored.to_dict() == data
        assert restored.verdict is Verdict.SECURE
        assert restored.design == report.design

    def test_failing_report_round_trips_cex_and_diagnosis(self, trojaned_module):
        report = detect_trojans(trojaned_module)
        restored = DetectionReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.trojan_detected
        assert restored.counterexample is not None
        assert restored.counterexample.failing_signals == report.counterexample.failing_signals
        assert restored.counterexample.values == report.counterexample.values
        assert restored.diagnosis is not None
        assert [c.signal for c in restored.diagnosis.causes] == [
            c.signal for c in report.diagnosis.causes
        ]

    def test_round_trip_preserves_summary_queries(self, trojaned_module):
        report = detect_trojans(trojaned_module)
        restored = DetectionReport.from_json(report.to_json())
        assert restored.property_runtimes() == report.property_runtimes()
        assert restored.solver_stats() == report.solver_stats()
        assert restored.failing_outcome().label == report.failing_outcome().label
        assert restored.summary()  # renders without the original objects

    def test_uncovered_report_round_trips_coverage(self, uncovered_trojan_module):
        report = detect_trojans(uncovered_trojan_module)
        assert report.verdict is Verdict.UNCOVERED_SIGNALS
        restored = DetectionReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.coverage.uncovered == report.coverage.uncovered

    def test_fanout_analysis_round_trips(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        restored = DetectionReport.from_json(report.to_json())
        assert restored.fanout_analysis.classes == report.fanout_analysis.classes
        assert restored.fanout_analysis.placement == report.fanout_analysis.placement

    def test_from_dict_rejects_unknown_version(self, pipeline_module):
        data = detect_trojans(pipeline_module).to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema_version"):
            DetectionReport.from_dict(data)

    def test_v1_reports_still_load(self, pipeline_module):
        # v2 only added the execution block, so v1 documents stay readable
        # with execution defaults filled in.
        data = detect_trojans(pipeline_module).to_dict()
        data["schema_version"] = 1
        del data["execution"]
        restored = DetectionReport.from_dict(data)
        assert restored.verdict is Verdict.SECURE
        assert restored.workers == 1
        assert restored.cache_hits == 0 and restored.cache_misses == 0

    def test_from_dict_rejects_missing_version(self):
        with pytest.raises(ReproError, match="schema_version"):
            DetectionReport.from_dict({"design": "x", "verdict": "secure"})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ReproError, match="dict"):
            DetectionReport.from_dict(["not", "a", "report"])

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReproError, match="JSON"):
            DetectionReport.from_json("this is not json")

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(ReproError, match="malformed"):
            DetectionReport.from_dict({"schema_version": SCHEMA_VERSION, "verdict": "secure"})

    def test_execution_block_round_trips(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        report.workers = 4
        report.cache_hits = 2
        report.cache_misses = 3
        report.workers_lost = 1
        report.tasks_retried = 2
        data = report.to_dict()
        assert data["execution"] == {
            "workers": 4,
            "cache_hits": 2,
            "cache_misses": 3,
            "workers_lost": 1,
            "tasks_retried": 2,
        }
        restored = DetectionReport.from_dict(data)
        assert restored.workers == 4
        assert restored.cache_hits == 2 and restored.cache_misses == 3
        assert restored.workers_lost == 1 and restored.tasks_retried == 2
        assert restored.to_dict() == data

    def test_summary_mentions_cache_activity(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        report.cache_hits = 2
        assert "result cache" in report.summary()


class TestDetectionReport:
    def test_report_fields_for_secure_run(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        assert isinstance(report, DetectionReport)
        assert report.design == "pipe"
        assert report.verdict is Verdict.SECURE
        assert report.failing_outcome() is None
        assert str(report)

    def test_property_runtime_map_labels(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        labels = set(report.property_runtimes())
        assert labels == {"init property", "fanout property 1"}

    def test_summary_mentions_spurious_when_present(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        report.spurious_resolved = 3
        assert "spurious" in report.summary()

    def test_verdict_str(self):
        assert str(Verdict.SECURE) == "secure"
        assert str(Verdict.TROJAN_SUSPECTED) == "trojan-suspected"

    def test_outcome_labels(self, trojaned_module):
        report = detect_trojans(trojaned_module)
        assert report.outcomes[0].label == "init property"
        assert report.outcomes[-1].label.startswith("fanout property")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            VerilogSyntaxError,
            ElaborationError,
            UnsupportedFeatureError,
            BitblastError,
            SolverError,
            PropertyError,
            SimulationError,
            DesignError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_syntax_error_carries_location(self):
        error = VerilogSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error) and "col 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_syntax_error_without_location(self):
        assert "bad" in str(VerilogSyntaxError("bad"))
