"""Simulation evidence that the regenerated Trojans are *real*.

For representative benchmarks, these tests drive the exact trigger condition
in simulation and observe the payload firing — confirming that the designs
the detection flow flags do contain functioning malicious logic, and that the
trigger conditions are rare enough that ordinary stimuli never activate them
(the premise of Sec. III).
"""

import pytest

from repro.crypto.aes_ref import aes128_encrypt_block
from repro.sim import Simulator
from repro.trusthub import load_module
from repro.trusthub.aes_core import AES_LATENCY
from repro.trusthub.aes_trojans import AES_TROJAN_SPECS


class TestSequenceTriggerActivation:
    def test_t1400_psc_payload_fires_after_magic_sequence(self):
        spec = AES_TROJAN_SPECS["AES-T1400"]
        module = load_module("AES-T1400")
        simulator = Simulator(module)
        key = 0x000102030405060708090A0B0C0D0E0F

        # Benign traffic: the payload shift register stays idle (all zero).
        for value in range(8):
            simulator.step({"state": value, "key": key})
        assert simulator.state()["tj_psc_shift"] == 0

        # Feed the magic plaintext sequence the trigger FSM waits for.
        for magic in spec.trigger.sequence:
            simulator.step({"state": magic, "key": key})
        assert simulator.state()["tj_seq_state"] == len(spec.trigger.sequence)

        # Once triggered, the power-side-channel shift register starts
        # shifting key-dependent bits: switching activity = leakage.
        activity = 0
        for cycle in range(16):
            simulator.step({"state": cycle, "key": key | 1})
            activity |= simulator.state()["tj_psc_shift"]
        assert activity != 0

    def test_t1400_functional_behaviour_unchanged_even_when_triggered(self):
        # The PSC payload leaks through power, not through the ciphertext:
        # even a triggered Trojan produces correct encryptions (stealthy).
        spec = AES_TROJAN_SPECS["AES-T1400"]
        module = load_module("AES-T1400")
        simulator = Simulator(module)
        key = 0x2B7E151628AED2A6ABF7158809CF4F3C
        for magic in spec.trigger.sequence:
            simulator.step({"state": magic, "key": key})
        plaintext = 0x3243F6A8885A308D313198A2E0370734
        values = {}
        for _ in range(AES_LATENCY):
            values = simulator.step({"state": plaintext, "key": key})
        assert values["out"] == aes128_encrypt_block(plaintext, key)


class TestCounterTriggerActivation:
    def test_t1900_beacon_toggles_without_any_input_activity(self):
        spec = AES_TROJAN_SPECS["AES-T1900"]
        module = load_module("AES-T1900")
        simulator = Simulator(module)
        # Below the threshold the battery-draining toggle bank is idle.
        for _ in range(8):
            simulator.step({"state": 0, "key": 0})
        assert simulator.state()["tj_dos_toggle"] == 0
        # Fast-forward the free-running cycle counter right to its threshold
        # (equivalent to waiting 2^19 cycles); the payload then switches even
        # though the IP inputs never change.
        simulator.set_state({"tj_cyc_count": spec.trigger.threshold})
        simulator.step({"state": 0, "key": 0})
        assert simulator.state()["tj_dos_toggle"] != 0

    def test_t2600_value_counter_advances_only_on_magic_value(self):
        module = load_module("AES-T2600")
        simulator = Simulator(module)
        for _ in range(10):
            simulator.step({"state": 0x11, "key": 0})
        assert simulator.state()["tj_val_count"] == 0
        # 0xa5 in the low plaintext byte propagates down the delay line and
        # increments the value counter exactly once per occurrence.
        simulator.step({"state": 0xA5, "key": 0})
        for _ in range(12):
            simulator.step({"state": 0x00, "key": 0})
        assert simulator.state()["tj_val_count"] == 1


class TestRsaLeakActivation:
    def test_t300_leaks_exponent_after_enough_encryptions(self):
        from repro.trusthub.rsa_core import RSA_LATENCY
        from repro.trusthub.rsa_trojans import RSA_TROJAN_SPECS

        spec = RSA_TROJAN_SPECS["BasicRSA-T300"]
        module = load_module("BasicRSA-T300")
        simulator = Simulator(module)
        secret_exponent = 0x2F
        stimulus = {"ds": 1, "indata": 1234, "inExp": secret_exponent, "inMod": 3233}
        observed = []
        for _ in range(spec.threshold + RSA_LATENCY + 2):
            observed.append(simulator.step(stimulus)["cypher"])
        # While the encryption counter sits on the threshold value, the cypher
        # output carries the private exponent instead of the ciphertext.
        assert secret_exponent in observed
        # Before the threshold is reached the output never shows the exponent.
        assert secret_exponent not in observed[: spec.threshold - 1]
