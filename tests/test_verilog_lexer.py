"""Tests for the Verilog tokeniser."""

import pytest

from repro.errors import VerilogSyntaxError
from repro.verilog.lexer import Lexer, TokenKind, parse_based_literal


def tokens_of(source):
    return [t for t in Lexer(source).tokenize() if t.kind != TokenKind.EOF]


class TestBasicTokens:
    def test_keywords_and_identifiers(self):
        kinds = [t.kind for t in tokens_of("module foo;")]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT]

    def test_identifier_with_dollar_and_digits(self):
        token = tokens_of("sig_1$x")[0]
        assert token.kind == TokenKind.IDENT
        assert token.text == "sig_1$x"

    def test_escaped_identifier(self):
        token = tokens_of(r"\weird[0] ")[0]
        assert token.kind == TokenKind.IDENT
        assert token.text == "weird[0]"

    def test_operators_longest_match(self):
        texts = [t.text for t in tokens_of("a <<< b <= c == d")]
        assert "<<<" in texts and "<=" in texts and "==" in texts

    def test_punctuation(self):
        texts = [t.text for t in tokens_of("(a, b); [7:0] {x}")]
        for expected in ["(", ")", ",", ";", "[", ":", "]", "{", "}"]:
            assert expected in texts

    def test_eof_token_present(self):
        assert Lexer("").tokenize()[-1].kind == TokenKind.EOF

    def test_string_literal(self):
        token = tokens_of('"hello world"')[0]
        assert token.kind == TokenKind.STRING
        assert token.text == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(VerilogSyntaxError):
            tokens_of('"unterminated')

    def test_unexpected_character_raises(self):
        with pytest.raises(VerilogSyntaxError):
            tokens_of("a £ b")


class TestNumbers:
    def test_plain_decimal(self):
        token = tokens_of("42")[0]
        assert token.kind == TokenKind.NUMBER

    def test_sized_hex(self):
        token = tokens_of("8'hFF")[0]
        assert token.kind == TokenKind.BASED_NUMBER

    def test_sized_binary_with_underscores(self):
        token = tokens_of("16'b1010_1010_0000_1111")[0]
        assert token.kind == TokenKind.BASED_NUMBER

    def test_unsized_based(self):
        token = tokens_of("'d100")[0]
        assert token.kind == TokenKind.BASED_NUMBER


class TestComments:
    def test_line_comment_skipped(self):
        assert [t.text for t in tokens_of("a // comment\n b")] == ["a", "b"]

    def test_block_comment_skipped(self):
        assert [t.text for t in tokens_of("a /* multi\nline */ b")] == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(VerilogSyntaxError):
            tokens_of("a /* never closed")

    def test_compiler_directive_skipped(self):
        assert [t.text for t in tokens_of("`timescale 1ns/1ps\nmodule")] == ["module"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokens_of("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestBasedLiteralDecoding:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("8'hFF", (8, 0xFF)),
            ("4'b1010", (4, 0b1010)),
            ("12'o777", (12, 0o777)),
            ("10'd1023", (10, 1023)),
            ("'h1A", (None, 0x1A)),
            ("8'hzz", (8, 0)),
            ("4'b1x1?", (4, 0b1010 & 0b1010)),
            ("2'd7", (2, 3)),  # value truncated to the declared width
        ],
    )
    def test_decoding(self, text, expected):
        assert parse_based_literal(text) == expected

    def test_signed_marker_ignored(self):
        assert parse_based_literal("8'sh7f") == (8, 0x7F)
