"""Shared fixtures: small designs used across many test modules."""

from __future__ import annotations

import pytest

from repro.rtl import elaborate_source


PIPELINE_SOURCE = """
module pipe(
  input clk,
  input  [7:0] din,
  output [7:0] dout
);
  reg [7:0] s1;
  reg [7:0] s2;
  always @(posedge clk) begin
    s1 <= din ^ 8'h5a;
    s2 <= s1 + 8'h01;
  end
  assign dout = s2;
endmodule
"""

TROJANED_PIPELINE_SOURCE = """
module pipe(
  input clk,
  input  [7:0] din,
  output [7:0] dout
);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [3:0] trig;
  always @(posedge clk) begin
    s1 <= din ^ 8'h5a;
    s2 <= s1 + 8'h01;
    trig <= trig + 4'h1;
  end
  assign dout = (trig == 4'hf) ? (s2 ^ 8'hff) : s2;
endmodule
"""

UNCOVERED_TROJAN_SOURCE = """
module pipe(
  input clk,
  input  [7:0] din,
  output [7:0] dout
);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [3:0] timer;
  reg [7:0] beacon;
  always @(posedge clk) begin
    s1 <= din ^ 8'h5a;
    s2 <= s1 + 8'h01;
    timer <= timer + 4'h1;
    if (timer == 4'hf)
      beacon <= ~beacon;
  end
  assign dout = s2;
endmodule
"""

COUNTER_SOURCE = """
module counter #(parameter W = 8) (
  input clk,
  input rst,
  input en,
  output [W-1:0] count,
  output wrapped
);
  reg [W-1:0] cnt;
  always @(posedge clk) begin
    if (rst)
      cnt <= 0;
    else if (en)
      cnt <= cnt + 1;
  end
  assign count = cnt;
  assign wrapped = (cnt == {W{1'b1}});
endmodule
"""


@pytest.fixture
def pipeline_module():
    """A clean two-stage feed-forward pipeline (non-interfering)."""
    return elaborate_source(PIPELINE_SOURCE, "pipe")


@pytest.fixture
def trojaned_module():
    """The same pipeline with a counter-triggered output bit-flip Trojan."""
    return elaborate_source(TROJANED_PIPELINE_SOURCE, "pipe")


@pytest.fixture
def uncovered_trojan_module():
    """A pipeline whose Trojan trigger and payload avoid the input fanout cone."""
    return elaborate_source(UNCOVERED_TROJAN_SOURCE, "pipe")


@pytest.fixture
def counter_module():
    """A parameterised enable/reset counter with 16-bit instantiation."""
    top = """
module top(input clk, input rst, input en, output [15:0] count, output wrapped);
  counter #(.W(16)) u_cnt (.clk(clk), .rst(rst), .en(en), .count(count), .wrapped(wrapped));
endmodule
"""
    return elaborate_source(COUNTER_SOURCE + top, "top")
