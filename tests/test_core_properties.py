"""Tests for the init / fanout / trojan property constructors."""

import pytest

from repro.core import DetectionConfig, Waiver
from repro.core.properties import (
    build_fanout_property,
    build_init_property,
    build_trojan_property,
)
from repro.errors import PropertyError
from repro.ipc.prop import Term
from repro.rtl import compute_fanout_classes


def assumed_signals(prop, time=0):
    return {
        c.left.signal
        for c in prop.assumptions
        if isinstance(c.right, Term) and c.left.time == time
    }


def proven_signals(prop):
    return {c.left.signal for c in prop.commitments}


class TestInitProperty:
    def test_assumes_inputs_and_proves_cc1(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_init_property(pipeline_module, analysis)
        assert "din" in assumed_signals(prop, time=0)
        assert proven_signals(prop) == {"s1"}
        assert all(c.left.time == 1 for c in prop.commitments)

    def test_inputs_assumed_at_prove_time_by_default(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_init_property(pipeline_module, analysis)
        assert "din" in assumed_signals(prop, time=1)

    def test_inputs_at_prove_time_can_be_disabled(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        config = DetectionConfig(assume_inputs_at_prove_time=False)
        prop = build_init_property(pipeline_module, analysis, config)
        assert assumed_signals(prop, time=1) == set()

    def test_waivers_become_assumptions(self, trojaned_module):
        analysis = compute_fanout_classes(trojaned_module)
        config = DetectionConfig(waivers=[Waiver("trig", "known benign")])
        prop = build_init_property(trojaned_module, analysis, config)
        assert "trig" in assumed_signals(prop, time=0)

    def test_unknown_waiver_rejected(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        config = DetectionConfig(waivers=[Waiver("ghost")])
        with pytest.raises(PropertyError):
            build_init_property(pipeline_module, analysis, config)

    def test_unknown_configured_input_rejected(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        with pytest.raises(PropertyError):
            build_init_property(pipeline_module, analysis, DetectionConfig(inputs=["nope"]))

    def test_clock_is_never_assumed(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_init_property(pipeline_module, analysis)
        assert "clk" not in assumed_signals(prop)


class TestFanoutProperty:
    def test_k_must_be_positive(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        with pytest.raises(PropertyError):
            build_fanout_property(pipeline_module, analysis, 0)

    def test_assumes_previous_class_and_proves_next(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_fanout_property(pipeline_module, analysis, 1)
        assert "s1" in assumed_signals(prop, time=0)
        assert proven_signals(prop) == {"s2", "dout"}

    def test_cumulative_assumptions_include_all_earlier_classes(self):
        from repro.rtl import elaborate_source

        module = elaborate_source(
            "module m(input clk, input [3:0] a, output [3:0] y);"
            " reg [3:0] r1; reg [3:0] r2; reg [3:0] r3;"
            " always @(posedge clk) begin r1 <= a; r2 <= r1; r3 <= r2; end"
            " assign y = r3; endmodule",
            "m",
        )
        analysis = compute_fanout_classes(module)
        cumulative = build_fanout_property(module, analysis, 2)
        assert {"r1", "r2"} <= assumed_signals(cumulative, time=0)
        strict = build_fanout_property(
            module, analysis, 2, DetectionConfig(cumulative_assumptions=False)
        )
        assert "r1" not in assumed_signals(strict, time=0)
        assert "r2" in assumed_signals(strict, time=0)

    def test_property_name_matches_paper_numbering(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_fanout_property(pipeline_module, analysis, 1)
        assert prop.name == "fanout_property_1"


class TestTrojanProperty:
    def test_aggregate_property_covers_all_classes(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_trojan_property(pipeline_module, analysis)
        assert proven_signals(prop) == {"s1", "s2", "dout"}
        times = {c.left.time for c in prop.commitments}
        assert times == {1, 2}

    def test_max_class_truncates_window(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        prop = build_trojan_property(pipeline_module, analysis, max_class=1)
        assert {c.left.time for c in prop.commitments} == {1}

    def test_design_without_reachable_state_rejected(self):
        from repro.rtl import elaborate_source

        module = elaborate_source(
            "module m(input clk); reg r; always @(posedge clk) r <= r; endmodule", "m"
        )
        analysis = compute_fanout_classes(module)
        with pytest.raises(PropertyError):
            build_trojan_property(module, analysis)
