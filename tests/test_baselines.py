"""Tests for the baseline detection techniques (random testing, BMC, UCI, FANCI)."""

import pytest

from repro.baselines import (
    BoundedTrojanChecker,
    FanciAnalysis,
    RandomSimulationTester,
    UnusedCircuitIdentification,
)
from repro.baselines.random_sim import aes_pipeline_golden
from repro.errors import DesignError
from repro.rtl import elaborate_source
from repro.trusthub import load_module
from repro.trusthub.aes_core import AES_LATENCY


SHORT_TRIGGER_TROJAN = """
module acc(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [2:0] count;
  always @(posedge clk) begin
    s1 <= din + 8'h11;
    s2 <= s1 ^ 8'h22;
    count <= count + 3'h1;
  end
  assign dout = (count == 3'h7) ? ~s2 : s2;
endmodule
"""

LONG_TRIGGER_TROJAN = """
module acc(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [19:0] count;
  always @(posedge clk) begin
    s1 <= din + 8'h11;
    s2 <= s1 ^ 8'h22;
    count <= count + 20'h1;
  end
  assign dout = (count == 20'hfffff) ? ~s2 : s2;
endmodule
"""

GOLDEN = """
module acc(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] s1;
  reg [7:0] s2;
  always @(posedge clk) begin
    s1 <= din + 8'h11;
    s2 <= s1 ^ 8'h22;
  end
  assign dout = s2;
endmodule
"""


@pytest.fixture
def golden_module():
    return elaborate_source(GOLDEN, "acc")


@pytest.fixture
def short_trigger_module():
    return elaborate_source(SHORT_TRIGGER_TROJAN, "acc")


@pytest.fixture
def long_trigger_module():
    return elaborate_source(LONG_TRIGGER_TROJAN, "acc")


class TestRandomSimulation:
    def test_clean_aes_core_shows_no_mismatch(self):
        module = load_module("AES-HT-FREE")
        tester = RandomSimulationTester(module, aes_pipeline_golden(AES_LATENCY), seed=1)
        result = tester.run(cycles=AES_LATENCY + 20)
        assert not result.trojan_detected
        assert "no mismatch" in result.summary()

    def test_long_trigger_trojan_not_found_by_random_testing(self, long_trigger_module):
        def golden(history):
            if len(history) < 3:
                return None
            stimulus = history[-3]
            return {"dout": ((stimulus["din"] + 0x11) & 0xFF) ^ 0x22}

        tester = RandomSimulationTester(long_trigger_module, golden, checked_outputs=["dout"], seed=3)
        result = tester.run(cycles=500)
        assert not result.trojan_detected

    def test_short_trigger_trojan_found_by_random_testing(self, short_trigger_module):
        def golden(history):
            if len(history) < 3:
                return None
            stimulus = history[-3]
            return {"dout": ((stimulus["din"] + 0x11) & 0xFF) ^ 0x22}

        tester = RandomSimulationTester(short_trigger_module, golden, checked_outputs=["dout"], seed=3)
        result = tester.run(cycles=64)
        assert result.trojan_detected
        assert result.mismatches[0].signal == "dout"


class TestBoundedModelChecking:
    def test_short_trigger_found_within_bound(self, short_trigger_module, golden_module):
        checker = BoundedTrojanChecker(short_trigger_module, golden_module)
        result = checker.check(bound=10)
        assert result.trojan_detected
        assert result.failing_cycle is not None
        assert "divergence" in result.summary()

    def test_long_trigger_missed_within_bound(self, long_trigger_module, golden_module):
        checker = BoundedTrojanChecker(long_trigger_module, golden_module)
        result = checker.check(bound=10)
        assert not result.trojan_detected

    def test_clean_design_never_diverges(self, golden_module):
        checker = BoundedTrojanChecker(golden_module, golden_module)
        assert not checker.check(bound=6).trojan_detected

    def test_combinational_input_path_shares_topmost_frame(self):
        # An output that samples the input combinationally must see the same
        # symbolic input in both models at the compared cycle — otherwise a
        # clean design is flagged as diverging.
        source = (
            "module m(input clk, input [7:0] din, output [7:0] dout);"
            " reg [7:0] stage; always @(posedge clk) stage <= din;"
            " assign dout = din ^ stage; endmodule"
        )
        dut = elaborate_source(source, "m")
        golden = elaborate_source(source.replace("module m", "module g"), "g")
        checker = BoundedTrojanChecker(dut, golden)
        for bound in (1, 2, 3):
            assert not checker.check(bound=bound).trojan_detected

    def test_incremental_bounds_reuse_clauses(self, short_trigger_module, golden_module):
        checker = BoundedTrojanChecker(short_trigger_module, golden_module)
        shallow = checker.check(bound=2)
        deeper = checker.check(bound=10)
        assert deeper.trojan_detected
        assert deeper.cnf_reused_clauses >= shallow.cnf_new_clauses

    def test_degenerate_checks_stay_vacuous(self, short_trigger_module, golden_module):
        # The classic wrapper contract: bound 0 (no cycles compared) and a
        # golden model with no common outputs both report "no divergence",
        # they do not raise like the sequential detection mode does.
        checker = BoundedTrojanChecker(short_trigger_module, golden_module)
        assert not checker.check(bound=0).trojan_detected
        disjoint = elaborate_source(
            "module g(input clk, input [7:0] din, output [7:0] other);"
            " assign other = din; endmodule",
            "g",
        )
        no_common = BoundedTrojanChecker(short_trigger_module, disjoint)
        assert not no_common.check(bound=5).trojan_detected

    def test_golden_inputs_must_exist_in_design(self, golden_module):
        other = elaborate_source(
            "module acc(input clk, input [7:0] other_name, output [7:0] dout);"
            " assign dout = other_name; endmodule",
            "acc",
        )
        with pytest.raises(DesignError):
            BoundedTrojanChecker(golden_module, other)


class TestUci:
    def test_dormant_trigger_flagged(self, long_trigger_module):
        analysis = UnusedCircuitIdentification(long_trigger_module)
        stimuli = [{"din": (17 * i) & 0xFF} for i in range(40)]
        result = analysis.analyze(stimuli)
        assert result.trojan_suspected
        # The 20-bit counter's value changes, but it never influences dout
        # during the campaign — the influence check must flag it.
        assert "count" in result.non_influencing_signals
        assert "count" in result.candidates
        assert "UCI" in result.summary()

    def test_clean_design_not_flagged(self, golden_module):
        analysis = UnusedCircuitIdentification(golden_module)
        stimuli = [{"din": (31 * i + 5) & 0xFF} for i in range(40)]
        result = analysis.analyze(stimuli)
        assert "s1" not in result.candidates
        assert "s2" not in result.candidates


class TestFanci:
    def test_wide_comparator_has_low_control_value(self):
        module = elaborate_source(
            "module m(input clk, input [31:0] d, output q);"
            " reg armed; always @(posedge clk) if (d == 32'hdeadbeef) armed <= 1'b1;"
            " assign q = armed; endmodule",
            "m",
        )
        result = FanciAnalysis(module, seed=5).analyze(samples=128, threshold=0.05)
        assert result.trojan_suspected
        assert "armed" in result.flagged_signals()
        assert "FANCI" in result.summary()

    def test_ordinary_datapath_not_flagged(self, golden_module):
        result = FanciAnalysis(golden_module, seed=5).analyze(samples=128, threshold=0.02)
        assert not [s for s in result.suspicious if s.signal in ("s1", "s2")]
