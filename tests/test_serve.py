"""Tests for the detection-as-a-service subsystem (`repro.serve`).

Covers the submission protocol (validation, effective config, dedup
fingerprints), the persistent journaled job queue (priorities, dedup
attachment, quotas, crash recovery), the SSE codec, and the HTTP daemon end
to end: submit -> stream -> report parity with an in-process session,
deduplicated resubmission, restart recovery of journaled jobs, and the
multi-process result-cache sharing the daemon's warm cache relies on.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.api import Design, DetectionConfig, DetectionSession
from repro.core.events import RunFinished, RunStarted
from repro.errors import DesignError, ReproError
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import class_cache_key
from repro.exec.records import normalized_report_dict
from repro.serve import AuditServer, JobQueue
from repro.serve import sse
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    Job,
    ProtocolError,
    QuotaExceededError,
    prepare_submission,
    submission_from_dict,
)

SMALL_SOURCE = """
module widget(input clk, input [3:0] din, output [3:0] dout);
  reg [3:0] a;
  reg [3:0] b;
  always @(posedge clk) begin
    a <= din + 4'd1;
    b <= a ^ 4'd3;
  end
  assign dout = b;
endmodule
"""

TROJANED_SMALL_SOURCE = """
module widget(input clk, input [3:0] din, output [3:0] dout);
  reg [3:0] a;
  reg [3:0] b;
  reg [3:0] trig;
  always @(posedge clk) begin
    a <= din + 4'd1;
    b <= a ^ 4'd3;
    trig <= trig + 4'd1;
  end
  assign dout = (trig == 4'hf) ? ~b : b;
endmodule
"""

# Secure, but ``(d + pad) - pad`` must be proven zero by the CDCL solver
# (structural hashing cannot fold the adder identity), so an audit of this
# design spends real time in SAT — long enough for a crash-recovery test
# to kill a daemon mid-run, especially with solver_stall faults planned.
SLOW_SECURE_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [7:0] pad;
  always @(posedge clk) begin
    s1 <= d ^ 8'h5a;
    pad <= (d + pad) - pad;
    s2 <= s1 + pad;
  end
  assign q = s2;
endmodule
"""


# ---------------------------------------------------------------------- #
# Protocol
# ---------------------------------------------------------------------- #


class TestSubmissionParsing:
    def test_verilog_submission_round_trips(self):
        submission = submission_from_dict(
            {"verilog": SMALL_SOURCE, "top": "widget", "priority": 3}
        )
        assert submission.top == "widget" and submission.priority == 3
        assert submission_from_dict(submission.to_dict()) == submission

    def test_requires_exactly_one_design_source(self):
        with pytest.raises(ProtocolError, match="exactly one design source"):
            submission_from_dict({})
        with pytest.raises(ProtocolError, match="exactly one design source"):
            submission_from_dict(
                {"benchmark": "X", "verilog": SMALL_SOURCE, "top": "widget"}
            )

    def test_verilog_requires_top(self):
        with pytest.raises(ProtocolError, match="'top'"):
            submission_from_dict({"verilog": SMALL_SOURCE})

    def test_benchmark_rejects_golden_overrides(self):
        with pytest.raises(ProtocolError, match="benchmarks use their catalogued"):
            submission_from_dict({"benchmark": "X", "golden_top": "g"})

    def test_golden_verilog_requires_golden_top(self):
        with pytest.raises(ProtocolError, match="'golden_top'"):
            submission_from_dict(
                {"verilog": SMALL_SOURCE, "top": "widget", "golden_verilog": "..."}
            )

    def test_unknown_field_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown submission field"):
            submission_from_dict({"benchmark": "X", "designe": "typo"})

    def test_bad_scalar_types_are_rejected(self):
        with pytest.raises(ProtocolError, match="'priority'"):
            submission_from_dict({"benchmark": "X", "priority": "high"})
        with pytest.raises(ProtocolError, match="'token'"):
            submission_from_dict({"benchmark": "X", "token": 7})
        with pytest.raises(ProtocolError, match="'config'"):
            submission_from_dict({"benchmark": "X", "config": []})


class TestPrepareSubmission:
    def test_fills_inputs_and_forces_execution_knobs(self, tmp_path):
        body = {"verilog": SMALL_SOURCE, "top": "widget", "config": {"jobs": 16}}
        _, design, config, fingerprint = prepare_submission(
            body, str(tmp_path / "cache"), True
        )
        assert design.name == "widget"
        assert config.jobs == 1  # the daemon's worker pool is the parallelism
        assert config.cache_dir == str(tmp_path / "cache")
        assert config.inputs == list(design.data_inputs)
        assert len(fingerprint) == 64

    def test_fingerprint_ignores_submitted_execution_knobs(self, tmp_path):
        base = {"verilog": SMALL_SOURCE, "top": "widget"}
        tuned = {
            "verilog": SMALL_SOURCE,
            "top": "widget",
            "config": {"jobs": 8, "cache_dir": "/elsewhere", "use_cache": False},
            "priority": 9,
            "token": "someone-else",
        }
        fp_base = prepare_submission(base, str(tmp_path), True)[3]
        fp_tuned = prepare_submission(tuned, str(tmp_path), True)[3]
        assert fp_base == fp_tuned

    def test_fingerprint_tracks_semantic_config_and_source(self, tmp_path):
        base = {"verilog": SMALL_SOURCE, "top": "widget"}
        # sim_patterns is a semantic knob (it enters the config fingerprint);
        # stop-knobs like max_class deliberately do not.
        deeper = {
            "verilog": SMALL_SOURCE,
            "top": "widget",
            "config": {"sim_patterns": 32},
        }
        mutated = {"verilog": SMALL_SOURCE.replace("4'd3", "4'd5"), "top": "widget"}
        fingerprints = {
            prepare_submission(body, str(tmp_path), True)[3]
            for body in (base, deeper, mutated)
        }
        assert len(fingerprints) == 3

    def test_unknown_benchmark_raises_design_error(self, tmp_path):
        with pytest.raises(DesignError, match="unknown benchmark"):
            prepare_submission({"benchmark": "AES-T0"}, str(tmp_path), True)

    def test_sequential_without_golden_is_rejected_at_submit_time(self, tmp_path):
        body = {
            "verilog": SMALL_SOURCE,
            "top": "widget",
            "config": {"mode": "sequential"},
        }
        with pytest.raises(ProtocolError, match="no golden model"):
            prepare_submission(body, str(tmp_path), True)


class TestJobRecord:
    def test_round_trip(self):
        job = Job(
            id="abc123",
            fingerprint="f" * 64,
            state="running",
            submission={"benchmark": "X"},
            design_name="X",
            mode="combinational",
            priority=2,
            token="ci",
            created_s=1.5,
            started_s=2.5,
            submissions=3,
            restarts=1,
        )
        assert Job.from_dict(job.to_dict()) == job

    def test_rejects_unknown_state(self):
        data = Job(
            id="a", fingerprint="f", state="queued", submission={}, design_name="d",
            mode="combinational",
        ).to_dict()
        data["state"] = "paused"
        with pytest.raises(ReproError, match="unknown job state"):
            Job.from_dict(data)

    def test_summary_hides_the_submission_body(self):
        job = Job(
            id="a", fingerprint="f", state="queued",
            submission={"verilog": SMALL_SOURCE}, design_name="d",
            mode="combinational",
        )
        summary = job.summary_dict()
        assert "submission" not in summary and summary["id"] == "a"


# ---------------------------------------------------------------------- #
# SSE codec
# ---------------------------------------------------------------------- #


class TestSseCodec:
    def test_encode_parse_round_trip(self):
        import io

        frames = (
            sse.encode_event({"a": 1}, event="RunStarted", event_id=0)
            + sse.KEEPALIVE_COMMENT
            + sse.encode_event({"b": [1, 2]}, event="end")
        )
        parsed = list(sse.iter_events(io.BytesIO(frames)))
        assert [frame.event for frame in parsed] == ["RunStarted", "end"]
        assert parsed[0].json() == {"a": 1} and parsed[0].id == "0"
        assert parsed[1].json() == {"b": [1, 2]}

    def test_multiline_data_concatenates(self):
        import io

        raw = b"event: x\ndata: line1\ndata: line2\n\n"
        (frame,) = sse.iter_events(io.BytesIO(raw))
        assert frame.data == "line1\nline2"

    def test_unterminated_final_frame_still_yields(self):
        import io

        raw = b"data: {\"a\": 1}\n"
        (frame,) = sse.iter_events(io.BytesIO(raw))
        assert frame.json() == {"a": 1} and frame.event is None


# ---------------------------------------------------------------------- #
# Job queue
# ---------------------------------------------------------------------- #


def _submit(queue, fingerprint, priority=0, token=""):
    return queue.submit(
        fingerprint,
        {"benchmark": "X"},
        design_name="X",
        mode="combinational",
        priority=priority,
        token=token,
    )


class TestJobQueue:
    def test_priority_order_then_fifo(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        low1, _ = _submit(queue, "a" * 64, priority=0)
        high, _ = _submit(queue, "b" * 64, priority=5)
        low2, _ = _submit(queue, "c" * 64, priority=0)
        claimed = [queue.claim(timeout=0.1).id for _ in range(3)]
        assert claimed == [high.id, low1.id, low2.id]
        assert queue.claim(timeout=0.05) is None

    def test_dedup_attaches_and_bumps_priority(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first, dedup1 = _submit(queue, "a" * 64, priority=0)
        _submit(queue, "b" * 64, priority=3)
        again, dedup2 = _submit(queue, "a" * 64, priority=9)
        assert not dedup1 and dedup2
        assert again.id == first.id and again.submissions == 2
        # The bump reorders the queue: the deduplicated job now runs first.
        assert queue.claim(timeout=0.1).id == first.id

    def test_dedup_attaches_to_completed_job(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        queue.claim(timeout=0.1)
        queue.finish(job.id, {"verdict": "secure"}, [])
        again, deduplicated = _submit(queue, "a" * 64)
        assert deduplicated and again.id == job.id and again.state == "done"

    def test_failed_job_does_not_absorb_resubmission(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        queue.claim(timeout=0.1)
        queue.fail(job.id, "worker exploded")
        retry, deduplicated = _submit(queue, "a" * 64)
        assert not deduplicated and retry.id != job.id

    def test_quota_counts_incomplete_jobs_per_token(self, tmp_path):
        queue = JobQueue(str(tmp_path), default_quota=1)
        job, _ = _submit(queue, "a" * 64, token="alice")
        with pytest.raises(QuotaExceededError, match="alice"):
            _submit(queue, "b" * 64, token="alice")
        _submit(queue, "c" * 64, token="bob")  # other tokens unaffected
        # A deduplicated resubmission is not new work: never quota-blocked.
        again, deduplicated = _submit(queue, "a" * 64, token="alice")
        assert deduplicated and again.id == job.id
        # Completion frees the quota slot.
        queue.claim(timeout=0.1)
        queue.claim(timeout=0.1)
        queue.finish(job.id, {}, [])
        _submit(queue, "d" * 64, token="alice")

    def test_per_token_quota_override(self, tmp_path):
        queue = JobQueue(str(tmp_path), default_quota=1, quotas={"ci": 2})
        _submit(queue, "a" * 64, token="ci")
        _submit(queue, "b" * 64, token="ci")
        with pytest.raises(QuotaExceededError):
            _submit(queue, "c" * 64, token="ci")

    def test_journal_survives_reopen(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        queue.claim(timeout=0.1)
        queue.finish(job.id, {"verdict": "secure"}, [{"event": "RunStarted"}])

        reopened = JobQueue(str(tmp_path))
        stored = reopened.get(job.id)
        assert stored.state == "done" and stored.submissions == 1
        assert reopened.report_for(job.id) == {"verdict": "secure"}
        assert reopened.events_for(job.id) == [{"event": "RunStarted"}]
        assert reopened.recovered_jobs == 0

    def test_incomplete_jobs_requeue_on_reopen(self, tmp_path):
        # lease_s=0: the claim's lease expires immediately, so the crashed
        # daemon's running job is an adoptable orphan, not a live peer's.
        queue = JobQueue(str(tmp_path), lease_s=0.0)
        queued_job, _ = _submit(queue, "a" * 64)
        running_job, _ = _submit(queue, "b" * 64, priority=1)
        claimed = queue.claim(timeout=0.1)
        assert claimed.id == running_job.id and claimed.state == "running"

        # Simulate a crash: reopen the directory in a fresh queue.
        reopened = JobQueue(str(tmp_path))
        assert reopened.recovered_jobs == 2
        recovered = reopened.get(running_job.id)
        assert recovered.state == "queued"
        assert recovered.restarts == 1  # only the mid-run job counts a restart
        assert reopened.get(queued_job.id).restarts == 0
        # Both are claimable again, original priority order preserved.
        assert reopened.claim(timeout=0.1).id == running_job.id
        assert reopened.claim(timeout=0.1).id == queued_job.id

    def test_running_job_with_live_lease_is_not_requeued_on_reopen(self, tmp_path):
        # A second daemon opening the shared directory must not steal work
        # a live peer is holding a fresh lease on.
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        assert queue.claim(timeout=0.1).id == job.id

        peer = JobQueue(str(tmp_path))
        assert peer.recovered_jobs == 0
        seen = peer.get(job.id)
        assert seen.state == "running" and seen.restarts == 0
        assert peer.claim(timeout=0.1) is None

    def test_recovered_jobs_keep_dedup_identity(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        reopened = JobQueue(str(tmp_path))
        again, deduplicated = _submit(reopened, "a" * 64)
        assert deduplicated and again.id == job.id

    def test_corrupt_journal_entry_is_ignored(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        jobs_dir = tmp_path / "jobs"
        (jobs_dir / "zzzz.json").write_text("{not json")
        good = json.loads((jobs_dir / f"{job.id}.json").read_text())
        good["serve_schema"] = 999
        (jobs_dir / "wrong-schema.json").write_text(json.dumps(good))

        reopened = JobQueue(str(tmp_path))
        assert [j.id for j in reopened.jobs()] == [job.id]
        # Corruption is counted and surfaced (repro_journal_corrupt_total),
        # never silently absorbed.
        assert reopened.corrupt_journals == 2
        assert reopened.stats()["corrupt_journals"] == 2

    def test_claim_blocks_until_submit(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        claimed = []
        worker = threading.Thread(
            target=lambda: claimed.append(queue.claim(timeout=5.0))
        )
        worker.start()
        job, _ = _submit(queue, "a" * 64)
        worker.join(timeout=5.0)
        assert not worker.is_alive() and claimed[0].id == job.id

    def test_stats_counts_by_state(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job, _ = _submit(queue, "a" * 64)
        _submit(queue, "b" * 64)
        queue.claim(timeout=0.1)
        queue.fail(job.id, "boom")
        stats = queue.stats()
        assert stats["jobs"] == 2
        assert stats["by_state"] == {
            "queued": 1, "running": 0, "done": 0, "failed": 1,
        }


class TestLeaseArbitration:
    """Lease files arbitrate job ownership among daemons sharing a queue dir."""

    def test_claim_materializes_and_finish_releases_the_lease(self, tmp_path):
        queue = JobQueue(str(tmp_path), owner="a", lease_s=30.0)
        job, _ = _submit(queue, "a" * 64)
        claimed = queue.claim(timeout=0.1)
        assert claimed.owner == "a" and claimed.lease_expires_s is not None
        lease_path = tmp_path / "leases" / f"{job.id}.lease"
        lease = json.loads(lease_path.read_text())
        assert lease["owner"] == "a" and lease["job"] == job.id
        queue.finish(job.id, {"verdict": "secure"}, [])
        assert not lease_path.exists()

    def test_renew_lease_extends_the_expiry(self, tmp_path, monkeypatch):
        import repro.serve.queue as queue_mod

        clock = [1000.0]
        monkeypatch.setattr(queue_mod, "now_s", lambda: clock[0])
        queue = JobQueue(str(tmp_path), owner="a", lease_s=30.0)
        job, _ = _submit(queue, "a" * 64)
        queue.claim(timeout=0.1)
        assert queue.get(job.id).lease_expires_s == 1030.0
        clock[0] = 1010.0
        assert queue.renew_lease(job.id)
        assert queue.get(job.id).lease_expires_s == 1040.0
        lease = json.loads((tmp_path / "leases" / f"{job.id}.lease").read_text())
        assert lease["expires_s"] == 1040.0

    def test_expired_lease_is_reaped_exactly_once(self, tmp_path):
        victim = JobQueue(str(tmp_path), owner="victim", lease_s=0.05)
        survivor = JobQueue(str(tmp_path), owner="survivor", lease_s=30.0)
        job, _ = _submit(victim, "a" * 64)
        assert victim.claim(timeout=0.1).id == job.id
        time.sleep(0.1)  # let the victim's lease lapse un-renewed
        assert survivor.reap_expired() == 1
        assert survivor.reap_expired() == 0  # a reaped job is not re-reaped
        # The victim's heartbeat fails: it must abandon the audit rather
        # than publish a result that doubles the re-queued run.
        assert not victim.renew_lease(job.id)
        adopted = survivor.claim(timeout=0.1)
        assert adopted.id == job.id and adopted.restarts == 1
        survivor.finish(job.id, {"verdict": "secure"}, [])
        assert victim.claim(timeout=0.1) is None  # never double-run
        assert survivor.stats()["leases_expired"] >= 1

    def test_wait_idle_timeout_ignores_wall_clock_jumps(self, tmp_path, monkeypatch):
        import repro.serve.queue as queue_mod

        queue = JobQueue(str(tmp_path))
        _submit(queue, "a" * 64)  # a non-terminal job keeps the queue busy
        # An NTP-style step of the wall clock (now_s) must not stretch the
        # timeout: wait_idle is specified over the monotonic clock.
        monkeypatch.setattr(queue_mod, "now_s", lambda: 1e12)
        started = time.monotonic()
        assert queue.wait_idle(timeout=0.2) is False
        assert time.monotonic() - started < 2.0


# ---------------------------------------------------------------------- #
# HTTP daemon, end to end
# ---------------------------------------------------------------------- #


@pytest.fixture()
def server(tmp_path):
    instance = AuditServer(port=0, queue_dir=str(tmp_path / "serve"), jobs=2)
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=30.0)


class TestServeHTTP:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok" and health["protocol"] == 1
        stats = client.stats()
        assert stats["workers"] == 2 and "queue" in stats and "cache" in stats

    def test_submitted_audit_matches_in_process_session(self, client):
        handle = client.submit({"verilog": TROJANED_SMALL_SOURCE, "top": "widget"})
        assert not handle["deduplicated"]
        job_id = handle["job"]["id"]

        events = list(client.stream_events(job_id))
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunFinished)

        served = client.report(job_id)
        direct = DetectionSession(
            Design.from_source(TROJANED_SMALL_SOURCE, top="widget")
        ).run()
        assert served.trojan_detected
        assert normalized_report_dict(served.to_dict()) == normalized_report_dict(
            direct.to_dict()
        )
        # The SSE stream's RunFinished carries the same report.
        assert events[-1].report.to_dict() == served.to_dict()

    def test_duplicate_submission_attaches_without_new_work(self, client):
        body = {"verilog": SMALL_SOURCE, "top": "widget"}
        first = client.submit(body)
        client.wait(first["job"]["id"], timeout=60.0)
        solver_calls_before = client.stats()["counters"]["completed"]

        second = client.submit(body)
        assert second["deduplicated"]
        assert second["job"]["id"] == first["job"]["id"]
        assert second["job"]["submissions"] == 2
        stats = client.stats()
        assert stats["counters"]["deduplicated"] == 1
        assert stats["counters"]["completed"] == solver_calls_before  # no re-run

    def test_terminal_job_replays_event_stream(self, client):
        handle = client.submit({"verilog": SMALL_SOURCE, "top": "widget"})
        job_id = handle["job"]["id"]
        client.wait(job_id, timeout=60.0)
        live = [type(e).__name__ for e in client.stream_events(job_id)]
        replay = [type(e).__name__ for e in client.stream_events(job_id)]
        assert live == replay and replay[-1] == "RunFinished"

    def test_bad_submission_is_http_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"verilog": "module broken(", "top": "broken"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({"benchmark": "AES-T0"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({"top": "widget"})
        assert excinfo.value.status == 400

    def test_unknown_job_is_http_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.report_dict("doesnotexist")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.job("doesnotexist")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_is_http_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("/v2/audits")
        assert excinfo.value.status == 404

    def test_jobs_listing(self, client):
        client.submit({"verilog": SMALL_SOURCE, "top": "widget"})
        listing = client.jobs()
        assert len(listing["jobs"]) == 1
        assert "submission" not in listing["jobs"][0]


class TestServeAdmission:
    def test_quota_is_http_429_and_priority_orders_jobs(self, tmp_path):
        # jobs=0: the daemon accepts and journals but never runs — queued
        # jobs stay queued, making admission behaviour deterministic.
        server = AuditServer(
            port=0, queue_dir=str(tmp_path / "serve"), jobs=0, default_quota=2
        )
        server.start()
        try:
            alice = ServeClient(server.url, token="alice", timeout=10.0)
            bob = ServeClient(server.url, token="bob", timeout=10.0)
            alice.submit({"verilog": SMALL_SOURCE, "top": "widget"})
            alice.submit(
                {"verilog": TROJANED_SMALL_SOURCE, "top": "widget", "priority": 7}
            )
            with pytest.raises(ServeError) as excinfo:
                alice.submit({"benchmark": "RS232-HT-FREE"})
            assert excinfo.value.status == 429
            bob.submit({"benchmark": "RS232-HT-FREE"})  # bob has his own quota

            with pytest.raises(ServeError) as excinfo:
                alice.report_dict(alice.jobs()["jobs"][0]["id"])
            assert excinfo.value.status == 409  # queued, no report yet

            # The worker-side claim order honours the priority field.
            assert server.queue.claim(timeout=0.1).priority == 7
        finally:
            server.stop()

    def test_restart_completes_journaled_jobs(self, tmp_path):
        queue_dir = str(tmp_path / "serve")
        accept_only = AuditServer(port=0, queue_dir=queue_dir, jobs=0)
        accept_only.start()
        try:
            submitter = ServeClient(accept_only.url, timeout=10.0)
            handle = submitter.submit(
                {"verilog": TROJANED_SMALL_SOURCE, "top": "widget"}
            )
            job_id = handle["job"]["id"]
            assert submitter.job(job_id)["state"] == "queued"
        finally:
            accept_only.stop()

        # "Restart" the daemon with workers on the same queue directory: the
        # journaled job must complete without being resubmitted.
        restarted = AuditServer(port=0, queue_dir=queue_dir, jobs=1)
        restarted.start()
        try:
            assert restarted.queue.recovered_jobs == 1
            client = ServeClient(restarted.url, timeout=30.0)
            final = client.wait(job_id, timeout=60.0)
            assert final["state"] == "done"
            served = client.report(job_id)
            direct = DetectionSession(
                Design.from_source(TROJANED_SMALL_SOURCE, top="widget")
            ).run()
            assert normalized_report_dict(
                served.to_dict()
            ) == normalized_report_dict(direct.to_dict())
        finally:
            restarted.stop()

    def test_failed_audit_streams_error_and_allows_retry(self, tmp_path):
        # An unknown golden module elaborates only at run time? No — design
        # errors are caught at submit time.  Force a runtime failure by
        # journaling a job whose stored submission no longer parses.
        server = AuditServer(port=0, queue_dir=str(tmp_path / "serve"), jobs=1)
        server.start()
        try:
            job, _ = server.queue.submit(
                "e" * 64,
                {"verilog": "module broken(", "top": "broken"},
                design_name="broken",
                mode="combinational",
            )
            client = ServeClient(server.url, timeout=10.0)
            final = client.wait(job.id, timeout=30.0)
            assert final["state"] == "failed" and final["error"]
            from repro.serve.client import AuditFailedError

            with pytest.raises(AuditFailedError):
                list(client.stream_events(job.id))
            with pytest.raises(ServeError) as excinfo:
                client.report_dict(job.id)
            assert excinfo.value.status == 409
        finally:
            server.stop()


# ---------------------------------------------------------------------- #
# Multi-process result-cache sharing
# ---------------------------------------------------------------------- #


def _cache_writer(root: str, worker: int, keys, results) -> None:
    """Write every key (contended), then verify own reads; run in a child."""
    cache = ResultCache(root)
    for index, key in enumerate(keys):
        cache.put(key, {"worker": worker, "index": index})
    hits = sum(1 for key in keys if cache.get(key) is not None)
    results.put((worker, hits, cache.corrupt_skipped))


class TestMultiProcessCacheSharing:
    def test_concurrent_writers_no_corruption_no_lost_hits(self, tmp_path):
        root = str(tmp_path / "shared-cache")
        keys = [class_cache_key("m" * 8, "c" * 8, index) for index in range(64)]
        context = multiprocessing.get_context("fork")
        results = context.Queue()
        writers = [
            context.Process(target=_cache_writer, args=(root, worker, keys, results))
            for worker in range(2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=60)
            assert process.exitcode == 0

        outcomes = {results.get(timeout=10)[0]: None for _ in writers}
        assert set(outcomes) == {0, 1}

        # Every entry is readable afterwards (no torn writes), attributable
        # to one of the two writers, and stats agree with the key count.
        reader = ResultCache(root)
        for key in keys:
            record = reader.get(key)
            assert record is not None, "lost or corrupt entry"
            assert record["worker"] in (0, 1)
        assert reader.corrupt_skipped == 0
        stats = reader.stats()
        assert stats["entries"] == len(keys)
        assert stats["bytes"] > 0 and stats["cache_schema"] >= 1

    def test_writer_processes_see_full_hit_rate(self, tmp_path):
        root = str(tmp_path / "shared-cache")
        keys = [class_cache_key("n" * 8, "d" * 8, index) for index in range(32)]
        context = multiprocessing.get_context("fork")
        results = context.Queue()
        writers = [
            context.Process(target=_cache_writer, args=(root, worker, keys, results))
            for worker in range(2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=60)
        for _ in writers:
            worker, hits, corrupt = results.get(timeout=10)
            # Reads that race another process's atomic replace still hit:
            # os.replace guarantees the old or the new entry, never neither.
            assert hits == len(keys), f"worker {worker} lost hits"
            assert corrupt == 0


# ---------------------------------------------------------------------- #
# Multi-daemon crash recovery (lease handover across real processes)
# ---------------------------------------------------------------------- #


_VICTIM_DAEMON_SCRIPT = """
import sys, time
from repro.serve import AuditServer

server = AuditServer(
    host="127.0.0.1", port=0, queue_dir=sys.argv[1], jobs=1,
    use_cache=False, owner="victim", lease_s=1.0,
)
server.start()
print(server.url, flush=True)
while True:
    time.sleep(1.0)
"""


class TestMultiDaemonCrashRecovery:
    def test_killed_daemon_job_is_adopted_and_finished_exactly_once(self, tmp_path):
        """SIGKILL a daemon mid-audit; a peer on the same queue dir finishes it.

        The victim runs in a real subprocess with solver_stall faults planned
        (every SAT call sleeps), so its audit is reliably still in flight
        when the kill lands.  The surviving daemon's reaper must observe the
        expired lease, re-queue the job with ``restarts`` bumped, run it
        (fault-free in this process) and serve the report — exactly once.
        """
        queue_dir = str(tmp_path / "shared")
        src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        env["REPRO_FAULTS"] = ",".join(
            f"solver_stall@check:{n}" for n in range(1, 101)
        )
        victim = subprocess.Popen(
            [sys.executable, "-c", _VICTIM_DAEMON_SCRIPT, queue_dir],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            url = victim.stdout.readline().strip()
            assert url.startswith("http"), f"victim daemon failed to start: {url!r}"
            victim_client = ServeClient(url, timeout=10.0)
            handle = victim_client.submit({
                "verilog": SLOW_SECURE_SOURCE,
                "top": "widget",
                "config": {"simplify": False},
            })
            job_id = handle["job"]["id"]
            # Kill the instant the audit is observably mid-run: the claim
            # transitions the job to running *before* the (stall-slowed)
            # solving starts, so the kill always lands mid-audit.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if victim_client.job(job_id)["state"] == "running":
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim daemon never started running the job")
            victim.kill()  # SIGKILL: no shutdown hooks, the lease just lapses
            victim.wait(timeout=10.0)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=10.0)
            victim.stdout.close()

        survivor = AuditServer(
            port=0, queue_dir=queue_dir, jobs=1,
            use_cache=False, owner="survivor", lease_s=1.0,
        )
        survivor.start()
        try:
            survivor_client = ServeClient(survivor.url, timeout=30.0)
            job = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    job = survivor_client.job(job_id)
                except ServeError:
                    job = None  # the reaper has not synced the journal yet
                if job is not None and job["state"] in ("done", "failed"):
                    break
                time.sleep(0.2)
            assert job is not None, "survivor never learned about the job"
            assert job["state"] == "done", f"job ended as {job!r}"
            assert job["restarts"] >= 1  # adopted via an expired-lease reap
            report = survivor_client.report_dict(job_id)
            assert report["verdict"] == "secure"
            # Exactly once: only the survivor's completion is recorded.
            stats = survivor_client.stats()
            assert stats["counters"]["completed"] == 1
            assert stats["queue"]["by_state"]["running"] == 0
        finally:
            survivor.stop()
