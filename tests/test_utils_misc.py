"""Tests for repro.utils.timing and repro.utils.graphs."""

import time

import networkx as nx
import pytest

from repro.utils.graphs import bfs_distances, find_cycle, reachable_from, topological_order
from repro.utils.timing import PeakMemoryTracker, Stopwatch


class TestStopwatch:
    def test_records_named_duration(self):
        watch = Stopwatch()
        with watch.time("proof"):
            time.sleep(0.01)
        assert len(watch.durations("proof")) == 1
        assert watch.durations("proof")[0] >= 0.005

    def test_total_accumulates(self):
        watch = Stopwatch()
        watch.record("a", 1.0)
        watch.record("a", 2.0)
        watch.record("b", 0.5)
        assert watch.total("a") == pytest.approx(3.0)
        assert watch.total() == pytest.approx(3.5)

    def test_names(self):
        watch = Stopwatch()
        watch.record("x", 0.1)
        assert watch.names() == ["x"]

    def test_unknown_name_empty(self):
        assert Stopwatch().durations("missing") == []


class TestPeakMemoryTracker:
    def test_tracks_allocation(self):
        with PeakMemoryTracker() as tracker:
            data = bytearray(4 * 1024 * 1024)
            del data
        assert tracker.peak_bytes >= 4 * 1024 * 1024
        assert tracker.peak_megabytes >= 4.0

    def test_nested_tracking_does_not_crash(self):
        with PeakMemoryTracker() as outer:
            with PeakMemoryTracker() as inner:
                _ = list(range(1000))
        assert inner.peak_bytes >= 0
        assert outer.peak_bytes >= 0


class TestGraphHelpers:
    def _chain(self):
        graph = nx.DiGraph()
        graph.add_edges_from([("a", "b"), ("b", "c"), ("c", "d"), ("x", "c")])
        return graph

    def test_reachable_from_single_source(self):
        assert reachable_from(self._chain(), ["a"]) == {"a", "b", "c", "d"}

    def test_reachable_from_ignores_unknown_sources(self):
        assert reachable_from(self._chain(), ["nope"]) == set()

    def test_bfs_distances(self):
        distances = bfs_distances(self._chain(), ["a"])
        assert distances == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_bfs_distances_multiple_sources_take_minimum(self):
        distances = bfs_distances(self._chain(), ["a", "x"])
        assert distances["c"] == 1
        assert distances["d"] == 2

    def test_topological_order_respects_edges(self):
        order = topological_order(self._chain())
        assert order.index("a") < order.index("b") < order.index("c") < order.index("d")

    def test_find_cycle_on_dag_is_empty(self):
        assert find_cycle(self._chain()) == []

    def test_find_cycle_detects_loop(self):
        graph = self._chain()
        graph.add_edge("d", "a")
        cycle = find_cycle(graph)
        assert set(cycle) <= {"a", "b", "c", "d"}
        assert cycle
