"""Tests for the reference crypto models (golden behavioural models)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes_ref import SBOX, aes128_encrypt_block, expand_key_128
from repro.crypto.rsa_ref import mod_exp, mod_mul, rsa_decrypt, rsa_encrypt


class TestAesSbox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_has_no_fixed_points(self):
        assert all(SBOX[i] != i for i in range(256))


class TestAesEncryption:
    def test_fips197_appendix_b_vector(self):
        ciphertext = aes128_encrypt_block(
            0x3243F6A8885A308D313198A2E0370734, 0x2B7E151628AED2A6ABF7158809CF4F3C
        )
        assert ciphertext == 0x3925841D02DC09FBDC118597196A0B32

    def test_fips197_appendix_c_vector(self):
        ciphertext = aes128_encrypt_block(
            0x00112233445566778899AABBCCDDEEFF, 0x000102030405060708090A0B0C0D0E0F
        )
        assert ciphertext == 0x69C4E0D86A7B0430D8CDB78070B4C55A

    def test_all_zero_block_and_key(self):
        assert aes128_encrypt_block(0, 0) == 0x66E94BD4EF8A2C3B884CFA59CA342B2E

    def test_key_expansion_first_and_last_round_key(self):
        round_keys = expand_key_128(0x2B7E151628AED2A6ABF7158809CF4F3C)
        assert len(round_keys) == 11
        assert bytes(round_keys[0]).hex() == "2b7e151628aed2a6abf7158809cf4f3c"
        assert bytes(round_keys[10]).hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    @given(
        plaintext=st.integers(min_value=0, max_value=(1 << 128) - 1),
        key=st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    @settings(max_examples=5, deadline=None)
    def test_encryption_is_input_dependent(self, plaintext, key):
        ciphertext = aes128_encrypt_block(plaintext, key)
        assert 0 <= ciphertext < (1 << 128)
        assert aes128_encrypt_block(plaintext ^ 1, key) != ciphertext


class TestRsaReference:
    def test_textbook_example(self):
        # p=61, q=53 -> n=3233, e=17, d=2753
        ciphertext = rsa_encrypt(65, 17, 3233)
        assert ciphertext == 2790
        assert rsa_decrypt(ciphertext, 2753, 3233) == 65

    def test_mod_exp_zero_modulus(self):
        assert mod_exp(5, 3, 0) == 0

    def test_mod_exp_exponent_zero(self):
        assert mod_exp(5, 0, 13) == 1

    def test_mod_mul_matches_python(self):
        assert mod_mul(123, 456, 789) == (123 * 456) % 789

    @given(
        base=st.integers(min_value=0, max_value=0xFFFF),
        exponent=st.integers(min_value=0, max_value=0xFF),
        modulus=st.integers(min_value=1, max_value=0xFFFF),
    )
    @settings(max_examples=20, deadline=None)
    def test_mod_exp_matches_pow(self, base, exponent, modulus):
        assert mod_exp(base, exponent, modulus) == pow(base, exponent, modulus)

    @given(
        a=st.integers(min_value=0, max_value=0xFFFF),
        b=st.integers(min_value=0, max_value=0xFFFF),
        modulus=st.integers(min_value=1, max_value=0xFFFF),
    )
    @settings(max_examples=20, deadline=None)
    def test_mod_mul_matches_python_property(self, a, b, modulus):
        assert mod_mul(a, b, modulus) == (a * b) % modulus
