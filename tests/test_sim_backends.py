"""Tests for the vectorized simulation kernel (repro.aig.simd).

The numpy kernel must be **bit-identical** to the pure-Python one on every
cone and batch width — that is what makes ``sim_backend`` a pure execution
knob (excluded from cache fingerprints, never pinned by the canonical
witness settle).  Cross-checks cover the raw kernels, the
:class:`PatternSet` dispatch layer, signature extraction, assignment
minimization, incremental AIG growth, the ``auto`` resolution policy, and
end-to-end normalized-report equality.
"""

import random

import pytest

from repro.aig import simd
from repro.aig.aig import AIG
from repro.aig.simvec import (
    PatternSet,
    SIM_BACKENDS,
    minimize_assignment,
    node_signatures,
    resolve_sim_backend,
)
from repro.exec import normalized_report_dict

from test_preprocess import _audit, _random_cone

numpy_only = pytest.mark.skipif(
    not simd.numpy_available(), reason="numpy is not installed"
)


def _random_words(rng, aig, roots, num_patterns):
    words = {}
    for node in aig.cone_nodes(roots):
        if aig.is_input(node):
            words[node] = rng.getrandbits(num_patterns)
    return words


@numpy_only
class TestKernelBitIdentity:
    # Widths straddle the limb size (64) and the auto threshold (256), and
    # include deliberately unaligned pattern counts (top-limb spill masking).
    @pytest.mark.parametrize("num_patterns", [1, 63, 64, 65, 256, 1000])
    def test_word_values_match_python_kernel(self, num_patterns):
        rng = random.Random(num_patterns)
        for trial in range(8):
            aig, root = _random_cone(rng, num_inputs=5, num_gates=30)
            mask = (1 << num_patterns) - 1
            words = _random_words(rng, aig, [root], num_patterns)
            expected = aig.evaluate_word_values([root], words, mask)
            actual = simd.evaluate_word_values_numpy(aig, [root], words, mask)
            assert actual == expected

    def test_root_words_match_python_kernel_with_complements(self):
        rng = random.Random(7)
        num_patterns = 300
        mask = (1 << num_patterns) - 1
        aig, root = _random_cone(rng, num_inputs=6, num_gates=40)
        roots = [root, root ^ 1]  # both polarities of the same node
        words = _random_words(rng, aig, roots, num_patterns)
        expected = aig.evaluate_words(roots, words, mask)
        actual = simd.evaluate_words_numpy(aig, roots, words, mask)
        assert actual == expected
        # Complement parity: the two polarities XOR to the full mask.
        assert actual[0] ^ actual[1] == mask

    def test_evaluator_extends_over_a_growing_aig(self):
        rng = random.Random(11)
        aig, root = _random_cone(rng, num_inputs=4, num_gates=15)
        num_patterns = 128
        mask = (1 << num_patterns) - 1
        words = _random_words(rng, aig, [root], num_patterns)
        first = simd.evaluate_words_numpy(aig, [root], words, mask)
        assert first == aig.evaluate_words([root], words, mask)
        # Grow the same AIG; the cached evaluator must pick up new nodes.
        aig2, root2 = _random_cone(rng, aig=aig, num_inputs=0, num_gates=25)
        assert aig2 is aig
        words = _random_words(rng, aig, [root, root2], num_patterns)
        expected = aig.evaluate_words([root, root2], words, mask)
        assert simd.evaluate_words_numpy(aig, [root, root2], words, mask) == expected

    def test_constant_and_input_roots(self):
        aig = AIG()
        i0 = aig.add_input("i0")
        num_patterns = 200
        mask = (1 << num_patterns) - 1
        word = random.Random(3).getrandbits(num_patterns)
        words = {i0 >> 1: word}
        # FALSE literal (0), TRUE literal (1), plain input, inverted input.
        roots = [0, 1, i0, i0 ^ 1]
        assert simd.evaluate_words_numpy(aig, roots, words, mask) == (
            aig.evaluate_words(roots, words, mask)
        )


@numpy_only
class TestDispatchLayerParity:
    def test_pattern_set_words_are_kernel_independent(self):
        for num_patterns in (64, 512):
            rng = random.Random(num_patterns)
            aig, root = _random_cone(rng, num_inputs=6, num_gates=40)
            by_kernel = {}
            for backend in ("python", "numpy"):
                patterns = PatternSet(num_patterns, sim_backend=backend)
                by_kernel[backend] = (
                    patterns.evaluate(aig, [root]),
                    node_signatures(aig, [root], patterns),
                )
            assert by_kernel["python"] == by_kernel["numpy"]

    def test_minimize_assignment_is_kernel_independent(self):
        rng = random.Random(23)
        aig, root = _random_cone(rng, num_inputs=8, num_gates=50)
        patterns = PatternSet(64, sim_backend="python")
        index = None
        for goal in (root, root ^ 1):
            words = patterns.evaluate(aig, [goal])
            if words[0]:
                index = (words[0] & -words[0]).bit_length() - 1
                break
        assert index is not None
        assignment = patterns.extract(aig, [goal], index)
        minimized = {
            backend: minimize_assignment(aig, [goal], assignment, sim_backend=backend)
            for backend in ("python", "numpy")
        }
        assert minimized["python"] == minimized["numpy"]


class TestBackendResolution:
    def test_policy(self):
        if not simd.numpy_available():
            for name in SIM_BACKENDS:
                assert resolve_sim_backend(name, 10_000) == "python"
            return
        assert resolve_sim_backend("python", 10_000) == "python"
        assert resolve_sim_backend("numpy", 1) == "numpy"
        threshold = simd.NUMPY_MIN_PATTERNS
        assert resolve_sim_backend("auto", threshold - 1) == "python"
        assert resolve_sim_backend("auto", threshold) == "numpy"

    def test_unknown_backend_is_rejected_by_config(self):
        from repro.core.config import DetectionConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="sim backend"):
            DetectionConfig(sim_backend="fortran")


@numpy_only
class TestReportEquivalence:
    """The kernel knob must not change one byte of any report."""

    @pytest.mark.parametrize(
        "bench_name", ["RS232-T2400", "RS232-HT-FREE", "RS232-SEQ-T3000"]
    )
    def test_forced_kernels_produce_identical_reports(self, bench_name):
        python_report = _audit(bench_name, sim_backend="python")
        numpy_report = _audit(bench_name, sim_backend="numpy")
        assert normalized_report_dict(python_report.to_dict()) == (
            normalized_report_dict(numpy_report.to_dict())
        )
        if python_report.counterexample is not None:
            assert (
                python_report.counterexample.values
                == numpy_report.counterexample.values
            )

    def test_wide_batches_agree_across_kernels(self):
        # 512 patterns puts auto mode on the numpy path; the python run
        # must still produce the identical report.
        wide_python = _audit("RS232-T2400", sim_patterns=512, sim_backend="python")
        wide_auto = _audit("RS232-T2400", sim_patterns=512, sim_backend="auto")
        assert normalized_report_dict(wide_python.to_dict()) == (
            normalized_report_dict(wide_auto.to_dict())
        )
