"""Tests for assumption-based incremental solving, backends and the context."""

import itertools
import random

import pytest

from repro.aig.aig import AIG
from repro.errors import SolverError
from repro.sat import (
    PythonCdclBackend,
    SatSolver,
    SolverContext,
    available_backends,
    create_backend,
    default_backend_name,
    pysat_available,
    register_backend,
)


def brute_force_satisfiable(num_vars, clauses, assumptions=()):
    constrained = list(clauses) + [[literal] for literal in assumptions]
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any((assignment[abs(l)] if l > 0 else not assignment[abs(l)]) for l in clause)
            for clause in constrained
        ):
            return True
    return False


def pigeonhole_clauses(holes):
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestAssumptionBasedSolving:
    def test_unsat_under_assumptions_stays_solvable_without_them(self):
        solver = SatSolver()
        guard = 13
        for clause in pigeonhole_clauses(3):
            solver.add_clause(clause + [-guard])
        assert not solver.solve(assumptions=[guard]).satisfiable
        # The same formula must remain solvable once the guard is dropped …
        assert solver.solve().satisfiable
        # … and even re-checkable under the opposite guard.
        assert solver.solve(assumptions=[-guard]).satisfiable

    def test_learned_clauses_persist_across_solve_calls(self):
        solver = SatSolver()
        guard = 13
        clauses = pigeonhole_clauses(3)
        for clause in clauses:
            solver.add_clause(clause + [-guard])
        problem_clauses = solver.num_clauses
        first = solver.solve(assumptions=[guard])
        assert not first.satisfiable and first.conflicts > 0
        # Conflict analysis appended learned clauses to the database.
        assert solver.num_clauses > problem_clauses
        learned_after_first = solver.num_clauses
        # A repeat of the same query keeps the learned clauses and resolves
        # with no more conflicts than the cold call.
        second = solver.solve(assumptions=[guard])
        assert not second.satisfiable
        assert second.conflicts <= first.conflicts
        assert solver.num_clauses >= learned_after_first

    def test_per_call_statistics_reset(self):
        solver = SatSolver()
        for clause in pigeonhole_clauses(3):
            solver.add_clause(clause)
        first = solver.solve()
        assert not first.satisfiable and first.conflicts > 0
        assert solver.total_conflicts >= first.conflicts
        assert solver.solve_calls == 1
        # A permanently UNSAT formula answers immediately on the next call.
        second = solver.solve()
        assert not second.satisfiable and second.conflicts == 0
        assert solver.solve_calls == 2

    def test_phase_and_activity_state_survive(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        first = solver.solve(assumptions=[1])
        assert first.satisfiable and first.model[3] is True
        second = solver.solve()
        assert second.satisfiable


class TestBackendRegistry:
    def test_python_backend_always_registered(self):
        assert "python" in available_backends()

    def test_auto_resolves_to_registered_backend(self):
        assert default_backend_name() in available_backends()
        backend = create_backend("auto")
        backend.add_clause([1])
        assert backend.solve().satisfiable

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError):
            create_backend("z3-but-not-really")

    def test_pysat_registered_iff_installed(self):
        assert ("pysat" in available_backends()) == pysat_available()

    def test_register_backend_overrides(self):
        marker = []

        def factory():
            marker.append(True)
            return PythonCdclBackend()

        register_backend("marked", factory)
        try:
            backend = create_backend("marked")
            assert marker and backend.name == "python"
        finally:
            import repro.sat.backend as backend_module

            backend_module._REGISTRY.pop("marked", None)


@pytest.mark.parametrize("backend_name", available_backends())
class TestBackendConformance:
    """Every registered backend must agree with brute force on small instances."""

    def _random_instances(self, count=8):
        rng = random.Random(7)
        instances = []
        for _ in range(count):
            num_vars = rng.randint(3, 7)
            clauses = []
            for _ in range(rng.randint(3, 20)):
                size = rng.randint(1, 3)
                variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
                clauses.append([v if rng.random() < 0.5 else -v for v in variables])
            instances.append((num_vars, clauses))
        return instances

    def test_agrees_with_brute_force(self, backend_name):
        for num_vars, clauses in self._random_instances():
            backend = create_backend(backend_name)
            for clause in clauses:
                backend.add_clause(clause)
            result = backend.solve()
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)

    def test_agrees_under_assumptions(self, backend_name):
        for num_vars, clauses in self._random_instances():
            backend = create_backend(backend_name)
            for clause in clauses:
                backend.add_clause(clause)
            for assumption in ([1], [-1], [1, 2], [-1, -2]):
                result = backend.solve(assumptions=assumption)
                expected = brute_force_satisfiable(num_vars, clauses, assumption)
                assert result.satisfiable == expected
                # UNSAT under assumptions must never poison the formula.
                if not result.satisfiable:
                    follow_up = backend.solve()
                    assert follow_up.satisfiable == brute_force_satisfiable(num_vars, clauses)

    def test_pigeonhole_unsat(self, backend_name):
        backend = create_backend(backend_name)
        for clause in pigeonhole_clauses(3):
            backend.add_clause(clause)
        assert not backend.solve().satisfiable
        assert backend.total_conflicts > 0
        assert backend.solve_calls == 1

    def test_model_satisfies_formula(self, backend_name):
        clauses = [[1, 2], [-1, -2], [2, 3], [-3, 1]]
        backend = create_backend(backend_name)
        for clause in clauses:
            backend.add_clause(clause)
        result = backend.solve()
        assert result.satisfiable
        for clause in clauses:
            assert any(
                (result.model.get(abs(l), False) if l > 0 else not result.model.get(abs(l), False))
                for l in clause
            )


@pytest.mark.skipif(not pysat_available(), reason="python-sat is not installed")
class TestPySatBackendParity:
    def test_agrees_with_python_backend_on_assumption_instances(self):
        clauses = [[-1, 2], [-2, -3], [3, 4], [-4, 5]]
        for assumptions in ([], [1], [1, 3], [-5, 3]):
            local = create_backend("python")
            remote = create_backend("pysat")
            for clause in clauses:
                local.add_clause(clause)
                remote.add_clause(clause)
            assert (
                local.solve(assumptions=assumptions).satisfiable
                == remote.solve(assumptions=assumptions).satisfiable
            )


class TestSolverContext:
    def _and_chain(self, aig, names):
        literal = None
        for name in names:
            node = aig.add_input(name)
            literal = node if literal is None else aig.and_(literal, node)
        return literal

    def test_only_new_clauses_are_fed(self):
        aig = AIG()
        root = self._and_chain(aig, "abcd")
        context = SolverContext(aig, backend="python")
        goal = context.literal_of(root)
        first = context.solve([goal])
        assert first.satisfiable
        assert first.new_clauses > 0 and first.reused_clauses == 0
        # Same goal again: the cone is cached, nothing new to feed.
        second = context.solve([context.literal_of(root)])
        assert second.satisfiable
        assert second.new_clauses == 0
        assert second.reused_clauses == first.new_clauses

    def test_overlapping_cone_adds_only_delta(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        shared = aig.and_(a, b)
        context = SolverContext(aig, backend="python")
        first = context.solve([context.literal_of(shared)])
        grown = aig.and_(shared, aig.add_input("c"))
        second = context.solve([context.literal_of(grown)])
        assert second.satisfiable
        # Only the new AND gate's three Tseitin clauses are added.
        assert 0 < second.new_clauses <= 3

    def test_assumptions_do_not_poison_the_context(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        both = aig.and_(a, b)
        neither = aig.and_(aig.not_(a), aig.not_(b))
        context = SolverContext(aig, backend="python")
        conflict = [context.literal_of(both), context.literal_of(neither)]
        assert not context.solve(conflict).satisfiable
        # Each goal alone remains satisfiable in the same context.
        assert context.solve([context.literal_of(both)]).satisfiable
        assert context.solve([context.literal_of(neither)]).satisfiable
        assert context.solve_calls == 3

    def test_statistics_accessors(self):
        aig = AIG()
        root = self._and_chain(aig, "ab")
        context = SolverContext(aig, backend="python")
        context.solve([context.literal_of(root)])
        assert context.backend_name == "python"
        assert context.num_clauses == context.clauses_fed > 0
        assert context.num_vars >= 3
        assert "backend" in context.reuse_summary()
