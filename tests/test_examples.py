"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "detect_aes_trojan.py",
        "verify_clean_design.py",
        "custom_accelerator_audit.py",
        "export_counterexample_waveform.py",
        "batch_audit_all_benchmarks.py",
    } <= names


def test_quickstart_runs(capsys):
    _load_example("quickstart").main()
    output = capsys.readouterr().out
    assert "SECURE" in output and "TROJAN-SUSPECTED" in output


def test_detect_aes_trojan_runs(capsys):
    _load_example("detect_aes_trojan").main()
    output = capsys.readouterr().out
    assert "init property" in output
    assert "matches the FIPS-197 reference" in output


def test_custom_accelerator_audit_runs(capsys):
    _load_example("custom_accelerator_audit").main()
    output = capsys.readouterr().out
    assert "magic_count" in output
    assert "no mismatch" in output


def test_export_counterexample_waveform_runs(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["export_counterexample_waveform.py", str(tmp_path)])
    _load_example("export_counterexample_waveform").main()
    output = capsys.readouterr().out
    assert "replay confirmed" in output
    assert (tmp_path / "aes_t2500_instance1.vcd").exists()
    assert (tmp_path / "aes_t2500_instance2.vcd").exists()


def test_batch_audit_runs_for_one_family(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["batch_audit_all_benchmarks.py", "RS232"])
    _load_example("batch_audit_all_benchmarks").main()
    output = capsys.readouterr().out
    assert "batch audit:" in output
    assert "RS232-HT-FREE" in output
    assert "every Trojan-infested design in the selection was flagged." in output


@pytest.mark.slow
def test_verify_clean_design_runs(capsys):
    _load_example("verify_clean_design").main()
    output = capsys.readouterr().out
    assert output.count("secure") >= 3
