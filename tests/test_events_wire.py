"""Tests for the run-event wire format and the EventBus subscription modes.

Covers the to_dict()/from_dict() round trip of every concrete event class
(driven by real runs so nested payloads — outcomes, counterexamples,
diagnoses, reports — are the genuine article), the event_from_dict
dispatcher's error handling, identity-keyed unsubscription, and the
safe-subscriber isolation guarantee (a raising safe subscriber must not
change a run's report).
"""

import json
import logging

import pytest

from repro.api import Design, DetectionConfig, DetectionSession
from repro.core.events import (
    CexFound,
    CexWaived,
    ClassEvent,
    ClassProven,
    ClassSimFalsified,
    ClassSplit,
    ConeSimplified,
    EventBus,
    PropertyScheduled,
    RunEvent,
    RunFinished,
    RunStarted,
    SolverProgress,
    StructurallyDischarged,
    WIRE_EVENT_TYPES,
    WorkerLost,
    event_from_dict,
)
from repro.errors import ReproError
from repro.exec.records import normalized_report_dict

#: Event classes whose payload is plain scalars/sequences: the round trip
#: must reproduce a dataclass-equal object.  The remaining classes carry
#: nested domain objects (outcomes, counterexamples, reports) whose
#: reconstruction is exact at the *wire* level (to_dict fixed point).
_SIMPLE_TYPES = (
    RunStarted,
    PropertyScheduled,
    ConeSimplified,
    ClassSplit,
    ClassSimFalsified,
    CexWaived,
    SolverProgress,
    WorkerLost,
)


def _concrete_event_types():
    """Every concrete RunEvent subclass, found by walking the class tree."""
    concrete = []
    pending = [RunEvent]
    while pending:
        cls = pending.pop()
        pending.extend(cls.__subclasses__())
        if cls not in (RunEvent, ClassEvent):
            concrete.append(cls)
    return concrete


@pytest.fixture(scope="module")
def harvested_events():
    """One event of every wire type, harvested from real runs.

    A secure run contributes structural discharges, a trojaned check-all
    run contributes unresolvable counterexamples, and a feedback design
    with cross-class fanin contributes SAT proofs, sim-falsifications, and
    waived spurious counterexamples.  ``ConeSimplified`` (which needs a
    sweep-friendly cone shape), ``SolverProgress`` (a heartbeat the
    solver only emits on long solves), ``ClassSplit`` (which needs a
    check hard enough to blow the conflict budget) and ``WorkerLost``
    (which needs a worker process to die repeatedly) are synthesized.
    """
    # Load the sibling conftest by path: a bare `import conftest` can
    # resolve to another directory's conftest in a full-repo pytest run.
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "_tests_conftest", os.path.join(os.path.dirname(__file__), "conftest.py")
    )
    tests_conftest = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(tests_conftest)
    PIPELINE_SOURCE = tests_conftest.PIPELINE_SOURCE
    TROJANED_PIPELINE_SOURCE = tests_conftest.TROJANED_PIPELINE_SOURCE
    from repro.rtl import elaborate_source

    feedback_source = """
    module fx(input clk, input [3:0] din, output [3:0] dout);
      reg [3:0] s; reg [3:0] t;
      always @(posedge clk) begin
        s <= t ^ din;
        t <= s + 4'h1;
      end
      assign dout = s & t;
    endmodule
    """
    events = []
    for source, top in (
        (PIPELINE_SOURCE, "pipe"),
        (TROJANED_PIPELINE_SOURCE, "pipe"),
        (feedback_source, "fx"),
    ):
        session = DetectionSession(
            elaborate_source(source, top),
            config=DetectionConfig(stop_at_first_failure=False),
        )
        events.extend(session.iter_results())
    events.append(
        ConeSimplified(
            design="pipe", index=1, nodes_before=24, nodes_after=9, merged_nodes=5
        )
    )
    events.append(
        ClassSplit(design="pipe", index=1, cubes=4, cubes_cached=1)
    )
    events.append(
        SolverProgress(
            design="pipe",
            index=1,
            kind="fanout",
            conflicts=2048,
            restarts=3,
            learned_clauses=1500,
            decision_level=12,
        )
    )
    events.append(
        WorkerLost(design="pipe", index=1, kind="fanout", retries=2, quarantined=True)
    )
    return events


class TestWireRegistry:
    def test_every_concrete_event_class_is_registered(self):
        concrete = {cls.__name__ for cls in _concrete_event_types()}
        assert concrete == set(WIRE_EVENT_TYPES)

    def test_registry_maps_names_to_matching_classes(self):
        for name, cls in WIRE_EVENT_TYPES.items():
            assert cls.__name__ == name
            assert issubclass(cls, RunEvent)


class TestWireRoundTrip:
    def test_harvest_covers_every_wire_type(self, harvested_events):
        covered = {type(event).__name__ for event in harvested_events}
        assert covered == set(WIRE_EVENT_TYPES)

    def test_round_trip_is_exact_for_every_event(self, harvested_events):
        for event in harvested_events:
            wire = event.to_dict()
            assert wire["event"] == type(event).__name__
            restored = event_from_dict(wire)
            assert type(restored) is type(event)
            # The wire form is a fixed point: serializing the restored
            # event reproduces the original payload bit for bit.
            assert restored.to_dict() == wire

    def test_round_trip_restores_dataclass_equality_for_simple_events(
        self, harvested_events
    ):
        simple = [e for e in harvested_events if isinstance(e, _SIMPLE_TYPES)]
        assert simple
        for event in simple:
            assert event_from_dict(event.to_dict()) == event

    def test_wire_form_survives_json_transport(self, harvested_events):
        for event in harvested_events:
            wire = event.to_dict()
            over_the_wire = json.loads(json.dumps(wire))
            assert event_from_dict(over_the_wire).to_dict() == wire

    def test_run_finished_round_trips_the_full_report(self, harvested_events):
        finished = [e for e in harvested_events if isinstance(e, RunFinished)]
        assert finished
        for event in finished:
            restored = event_from_dict(event.to_dict())
            assert restored.report.to_dict() == event.report.to_dict()
            assert restored.report.verdict == event.report.verdict

    def test_cex_found_round_trips_counterexample_and_diagnosis(
        self, harvested_events
    ):
        found = [e for e in harvested_events if isinstance(e, CexFound)]
        assert found
        for event in found:
            restored = event_from_dict(event.to_dict())
            assert restored.auto_resolvable == event.auto_resolvable
            assert (restored.diagnosis is None) == (event.diagnosis is None)
            assert restored.label == event.label


class TestClassSplitWireFormat:
    """The exact over-the-wire shape of ClassSplit is a compatibility
    contract: serve's SSE stream and journaled queue replay it across
    daemon versions, so key names and defaulting are pinned here."""

    def test_to_dict_is_the_exact_documented_payload(self):
        event = ClassSplit(design="widget", index=3, cubes=8, cubes_cached=5)
        assert event.to_dict() == {
            "event": "ClassSplit",
            "design": "widget",
            "index": 3,
            "kind": "fanout",
            "cubes": 8,
            "cubes_cached": 5,
        }

    def test_from_dict_round_trips_and_defaults_optional_keys(self):
        event = ClassSplit(
            design="widget", index=2, cubes=4, cubes_cached=4, kind="init"
        )
        assert event_from_dict(event.to_dict()) == event
        # Older producers omit cubes_cached/kind: the reader must default
        # them rather than reject the payload.
        sparse = {"event": "ClassSplit", "design": "w", "index": 0, "cubes": 2}
        restored = event_from_dict(sparse)
        assert restored == ClassSplit(design="w", index=0, cubes=2)
        assert restored.cubes_cached == 0
        assert restored.kind == "fanout"

    def test_malformed_payload_is_a_repro_error(self):
        with pytest.raises(ReproError, match="malformed ClassSplit"):
            event_from_dict({"event": "ClassSplit", "design": "w", "index": 0})


class TestWireDispatchErrors:
    def test_rejects_non_dict(self):
        with pytest.raises(ReproError, match="must be a dict"):
            event_from_dict(["RunStarted"])

    def test_rejects_unknown_event_name(self):
        with pytest.raises(ReproError, match="unknown event type 'Bogus'"):
            event_from_dict({"event": "Bogus"})

    def test_rejects_missing_event_key(self):
        with pytest.raises(ReproError, match="unknown event type None"):
            event_from_dict({"design": "pipe"})

    def test_malformed_payload_is_a_repro_error(self):
        with pytest.raises(ReproError, match="malformed RunStarted"):
            event_from_dict({"event": "RunStarted", "design": "pipe"})


class TestEventBusIdentitySubscriptions:
    def test_duplicate_subscription_unsubscribes_only_itself(self):
        # Regression: subscriptions used to be (type, callback) tuples, so
        # list.remove() on the *second* handle detached the *first* entry —
        # and the second unsubscribe raised or silently double-removed.
        bus = EventBus()
        seen = []
        first = bus.subscribe(seen.append)
        second = bus.subscribe(seen.append)
        assert len(bus) == 2

        first()
        assert len(bus) == 1
        bus.emit(RunStarted(design="d", scheduled_classes=1, solver_backend="b"))
        assert len(seen) == 1  # exactly the surviving duplicate fired

        second()
        assert len(bus) == 0
        bus.emit(RunStarted(design="d", scheduled_classes=1, solver_backend="b"))
        assert len(seen) == 1

    def test_unsubscribe_twice_is_a_noop(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(lambda event: None)
        unsubscribe()
        unsubscribe()  # must not raise, must not detach anything else
        assert len(bus) == 0

    def test_typed_duplicates_are_also_identity_keyed(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, RunStarted)
        second = bus.subscribe(seen.append, RunStarted)
        second()
        bus.emit(RunStarted(design="d", scheduled_classes=1, solver_backend="b"))
        assert len(seen) == 1


class TestEventBusSafeMode:
    def test_safe_subscriber_exception_is_logged_and_swallowed(self, caplog):
        bus = EventBus()
        delivered = []

        def explode(event):
            raise RuntimeError("progress bar crashed")

        bus.subscribe(explode, safe=True)
        bus.subscribe(delivered.append)
        with caplog.at_level(logging.ERROR, logger="repro.events"):
            bus.emit(RunStarted(design="d", scheduled_classes=1, solver_backend="b"))
        assert len(delivered) == 1  # delivery continued past the failure
        assert any("safe subscriber" in record.message for record in caplog.records)

    def test_unsafe_subscriber_exception_propagates(self):
        bus = EventBus()
        bus.subscribe(lambda event: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            bus.emit(RunStarted(design="d", scheduled_classes=1, solver_backend="b"))

    def test_raising_safe_subscriber_does_not_change_the_report(
        self, pipeline_module, caplog
    ):
        # The regression the safe mode exists for: a broken observer
        # (telemetry, SSE streamer) must not alter the audit's outcome.
        baseline = DetectionSession(pipeline_module).run()

        session = DetectionSession(pipeline_module)
        calls = []

        def explode(event):
            calls.append(event)
            raise RuntimeError("observer bug")

        session.subscribe(explode, safe=True)
        with caplog.at_level(logging.ERROR, logger="repro.events"):
            report = session.run()

        assert calls  # the subscriber really fired (and raised) every time
        assert normalized_report_dict(report.to_dict()) == normalized_report_dict(
            baseline.to_dict()
        )

    def test_unsafe_subscriber_still_aborts_the_run(self, pipeline_module):
        session = DetectionSession(pipeline_module)

        def explode(event):
            raise RuntimeError("report writer failed")

        session.subscribe(explode)
        with pytest.raises(RuntimeError, match="report writer failed"):
            session.run()
        assert session.report is None
