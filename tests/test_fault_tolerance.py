"""Fault-tolerance tests: fault injection, worker supervision, deadlines.

Every failure path here is driven by the deterministic fault harness
(:mod:`repro.exec.faults`) rather than by staging real crashes: a pool
worker SIGKILLs itself on a planned task, the cache feigns a torn entry,
and the solver stalls past its wall-clock deadline — so the degradation
machinery (retry → quarantine, timeout outcomes, corrupt-entry misses)
runs for real in every CI run.
"""

import multiprocessing
import os

import pytest

from repro.api import Design, DetectionConfig, DetectionSession
from repro.core.report import Verdict
from repro.errors import ConfigError, ReproError
from repro.exec import faults
from repro.exec.cache import ResultCache
from repro.exec.executor import ChunkTask, ProcessPoolExecutor
from repro.exec.faults import FAULTS_ENV, FaultPlan, FaultSpec, parse_fault_plan
from repro.exec.records import normalized_report_dict

CLEAN_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [7:0] s3;
  always @(posedge clk) begin
    s1 <= d ^ 8'h5a;
    s2 <= s1 + 8'h01;
    s3 <= s2 ^ 8'hc3;
  end
  assign q = s3;
endmodule
"""

# The init property of this design must prove that ``(d + pad) - pad``
# cancels — an arithmetic identity the AIG's structural hashing cannot
# fold — so class 0 reaches the CDCL solver even on a secure run.  That
# makes it the target for the solver_stall fault: the stalled call is a
# *real* check, not an artifact of the harness.
STALL_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [7:0] pad;
  always @(posedge clk) begin
    s1 <= d ^ 8'h5a;
    pad <= (d + pad) - pad;
    s2 <= s1 + pad;
  end
  assign q = s2;
endmodule
"""


@pytest.fixture(autouse=True)
def _pristine_fault_plan(monkeypatch):
    """Each test starts (and leaves the process) with no fault plan."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    faults.set_plan(None)
    yield
    faults.set_plan(None)


def _run(source=CLEAN_SOURCE, **overrides):
    design = Design.from_source(source, top="widget")
    return DetectionSession(design, config=DetectionConfig(**overrides)).run()


# ---------------------------------------------------------------------- #
# The fault plan itself
# ---------------------------------------------------------------------- #


class TestFaultPlanParsing:
    def test_parses_the_documented_example(self):
        plan = parse_fault_plan(
            "worker_kill@task:2,cache_corrupt@class:1,solver_stall@check:3"
        )
        assert plan.specs == (
            FaultSpec(kind="worker_kill", scope="task", nth=2),
            FaultSpec(kind="cache_corrupt", scope="class", nth=1),
            FaultSpec(kind="solver_stall", scope="check", nth=3),
        )
        assert bool(plan)

    def test_empty_entries_and_whitespace_are_tolerated(self):
        plan = parse_fault_plan(" worker_kill@task:1 , , ")
        assert len(plan.specs) == 1

    @pytest.mark.parametrize(
        "text, match",
        [
            ("worker_kill", "malformed fault spec"),
            ("worker_kill:2", "malformed fault spec"),
            ("worker_kill@task", "malformed fault spec"),
            ("meteor_strike@task:1", "unknown fault kind"),
            ("worker_kill@check:1", "counted per 'task'"),
            ("worker_kill@task:0", "1-based"),
            ("worker_kill@task:x", "1-based"),
        ],
    )
    def test_malformed_specs_fail_loudly(self, text, match):
        # A typoed chaos plan must abort the run, never inject nothing.
        with pytest.raises(ReproError, match=match):
            parse_fault_plan(text)

    def test_fire_counts_occurrences_per_kind(self):
        plan = parse_fault_plan("solver_stall@check:2,solver_stall@check:4")
        fired = [plan.fire("solver_stall") for _ in range(5)]
        assert fired == [False, True, False, True, False]
        # Kinds outside the plan never fire and never consume a count.
        assert not plan.fire("worker_kill")

    def test_plan_resolves_lazily_from_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache_corrupt@class:1")
        faults.set_plan(None)  # force the next seam to re-read the env
        assert faults.fire("cache_corrupt")
        assert not faults.fire("cache_corrupt")  # nth=1 fires exactly once

    def test_empty_environment_means_no_faults(self):
        assert isinstance(faults.active_plan(), FaultPlan)
        assert not faults.active_plan()
        assert not faults.fire("worker_kill")


# ---------------------------------------------------------------------- #
# Worker supervision: retry, quarantine, no zombies
# ---------------------------------------------------------------------- #


class TestWorkerSupervision:
    def test_killed_worker_is_retried_and_report_matches_serial(self, monkeypatch):
        baseline = _run(jobs=1)
        # Each forked worker SIGKILLs itself when it picks up its second
        # task.  A requeued task can be stolen by an idle veteran (killing
        # it too), but every steal removes the stealer for good, so a modest
        # retry budget guarantees a fresh worker finishes the task.
        # task_retries is execution-only: it must not disturb the
        # normalized-report comparison below.
        monkeypatch.setenv(FAULTS_ENV, "worker_kill@task:2")
        faults.set_plan(None)
        faulted = _run(jobs=2, task_retries=5)
        assert faulted.workers_lost >= 1
        assert faulted.tasks_retried >= 1
        assert faulted.verdict is Verdict.SECURE
        # The headline robustness contract: a crashed-and-retried run is
        # byte-identical to the serial run once volatile telemetry is gone.
        assert normalized_report_dict(faulted.to_dict()) == normalized_report_dict(
            baseline.to_dict()
        )

    def test_exhausted_retry_budget_quarantines_instead_of_aborting(
        self, monkeypatch
    ):
        # Every worker dies on its *first* task and the budget allows no
        # retries, so every class ends quarantined — the run must still
        # complete, fail-closed, rather than raise.
        monkeypatch.setenv(FAULTS_ENV, "worker_kill@task:1")
        faults.set_plan(None)
        report = _run(jobs=2, task_retries=0)
        assert report.verdict is Verdict.INCONCLUSIVE
        assert report.workers_lost >= len(report.outcomes)
        assert report.tasks_retried == 0
        assert all(outcome.status == "error" for outcome in report.outcomes)
        # Fail-closed: an error outcome never masquerades as a detection.
        assert all(outcome.holds for outcome in report.outcomes)
        assert "error" in report.summary()

    def test_retry_histories_never_leak_into_normalized_reports(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker_kill@task:2")
        faults.set_plan(None)
        faulted = _run(jobs=2, task_retries=5)
        data = normalized_report_dict(faulted.to_dict())
        assert "execution" not in data

    def test_close_leaves_no_zombie_children(self):
        from repro.rtl import elaborate_source
        from repro.exec import WorkUnit

        module = elaborate_source(CLEAN_SOURCE, "widget")
        unit = WorkUnit(
            key="k0", name="widget", module=module, config=DetectionConfig()
        )
        executor = ProcessPoolExecutor({unit.key: unit}, jobs=2)
        tasks = [
            ChunkTask(task_id=i, design_key="k0", indices=(i,), stop_on_failure=True)
            for i in range(3)
        ]
        list(executor.run(tasks))  # run() closes on exhaustion
        executor.close()  # idempotent
        leftovers = [
            child
            for child in multiprocessing.active_children()
            if child.name.startswith("worker-") and child.is_alive()
        ]
        assert leftovers == []


# ---------------------------------------------------------------------- #
# Check deadlines
# ---------------------------------------------------------------------- #


class TestCheckDeadline:
    def test_stalled_check_degrades_to_timeout_outcome(self):
        # The first SAT check stalls past the deadline; the class must
        # settle as an inconclusive timeout while the rest of the run
        # completes normally.  simplify=False keeps preprocessing from
        # consuming the planned stall occurrence.
        faults.set_plan(parse_fault_plan("solver_stall@check:1"))
        report = _run(
            source=STALL_SOURCE, jobs=1, simplify=False, check_timeout_s=2.0
        )
        assert report.verdict is Verdict.INCONCLUSIVE
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses[0] == "timeout"
        assert all(status == "ok" for status in statuses[1:])
        timed_out = report.outcomes[0]
        assert timed_out.holds  # fail-closed, never a detection
        assert timed_out.result.runtime_seconds > 0
        assert "timeout" in report.summary()

    def test_untimed_runs_are_unaffected_by_a_bounded_stall(self):
        # Without check_timeout_s the stall seam is bounded: the run is
        # slower but semantically untouched.
        faults.set_plan(parse_fault_plan("solver_stall@check:1"))
        stalled = _run(source=STALL_SOURCE, jobs=1, simplify=False)
        faults.set_plan(None)
        plain = _run(source=STALL_SOURCE, jobs=1, simplify=False)
        assert normalized_report_dict(stalled.to_dict()) == normalized_report_dict(
            plain.to_dict()
        )

    def test_timeout_outcomes_are_never_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        faults.set_plan(parse_fault_plan("solver_stall@check:1"))
        first = _run(
            source=STALL_SOURCE, jobs=1, simplify=False, check_timeout_s=2.0,
            cache_dir=cache_dir, use_cache=True,
        )
        assert first.verdict is Verdict.INCONCLUSIVE
        # Re-run against the same cache with no faults: had the timeout
        # been written back, this run would replay it and stay inconclusive.
        faults.set_plan(FaultPlan())
        second = _run(
            source=STALL_SOURCE, jobs=1, simplify=False, check_timeout_s=2.0,
            cache_dir=cache_dir, use_cache=True,
        )
        assert second.verdict is Verdict.SECURE
        assert all(outcome.status == "ok" for outcome in second.outcomes)


# ---------------------------------------------------------------------- #
# Cache corruption
# ---------------------------------------------------------------------- #


class TestCacheCorruptFault:
    def test_planned_corruption_counts_as_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "ab" * 32
        cache.put(key, {"value": 1})
        faults.set_plan(parse_fault_plan("cache_corrupt@class:1"))
        assert cache.get(key) is None
        assert cache.corrupt_skipped == 1
        # Only the planned occurrence faults; the entry itself is intact.
        assert cache.get(key) == {"value": 1}


# ---------------------------------------------------------------------- #
# Config validation of the new knobs
# ---------------------------------------------------------------------- #


class TestFaultToleranceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(task_retries=-1),
            dict(task_retries=1.5),
            dict(task_retries=True),
            dict(check_timeout_s=0),
            dict(check_timeout_s=-2.0),
            dict(check_timeout_s=True),
            dict(check_timeout_s="fast"),
        ],
    )
    def test_invalid_knobs_fail_at_construction(self, kwargs):
        with pytest.raises(ConfigError):
            DetectionConfig(**kwargs)

    def test_valid_knobs_round_trip(self):
        config = DetectionConfig(task_retries=0, check_timeout_s=2.5)
        restored = DetectionConfig.from_dict(config.to_dict())
        assert restored.task_retries == 0
        assert restored.check_timeout_s == 2.5
