"""Tests for the Verilog parser."""

import pytest

from repro.errors import UnsupportedFeatureError, VerilogSyntaxError
from repro.verilog import ast
from repro.verilog.parser import parse_source


def single_module(source):
    parsed = parse_source(source)
    assert len(parsed.modules) == 1
    return parsed.modules[0]


class TestModuleHeaders:
    def test_ansi_ports(self):
        module = single_module("module m(input clk, input [7:0] d, output reg [3:0] q); endmodule")
        directions = {p.name: p.direction for p in module.ports}
        assert directions == {"clk": "input", "d": "input", "q": "output"}
        q = next(p for p in module.ports if p.name == "q")
        assert q.is_reg

    def test_non_ansi_ports(self):
        module = single_module(
            "module m(a, b, y); input a; input b; output [3:0] y; endmodule"
        )
        assert module.port_order == ["a", "b", "y"]
        assert {p.name for p in module.ports} == {"a", "b", "y"}

    def test_shared_direction_in_header(self):
        module = single_module("module m(input a, b, output y); endmodule")
        directions = [p.direction for p in module.ports]
        assert directions == ["input", "input", "output"]

    def test_empty_port_list(self):
        module = single_module("module m(); endmodule")
        assert module.ports == []

    def test_parameter_port_list(self):
        module = single_module("module m #(parameter W = 8, D = 2) (input [W-1:0] a); endmodule")
        params = {p.name for p in module.parameters()}
        assert params == {"W", "D"}

    def test_multiple_modules(self):
        parsed = parse_source("module a; endmodule module b; endmodule")
        assert [m.name for m in parsed.modules] == ["a", "b"]

    def test_missing_endmodule_raises(self):
        with pytest.raises(VerilogSyntaxError):
            parse_source("module m(input a);")


class TestDeclarationsAndAssigns:
    def test_wire_and_reg_declarations(self):
        module = single_module("module m; wire [7:0] w1, w2; reg r; endmodule")
        kinds = {d.names: d.kind for d in module.items if isinstance(d, ast.NetDecl)}
        assert kinds == {("w1", "w2"): "wire", ("r",): "reg"}

    def test_wire_with_initialiser_creates_assign(self):
        module = single_module("module m; wire [3:0] w = 4'h5; endmodule")
        assigns = [item for item in module.items if isinstance(item, ast.ContinuousAssign)]
        assert len(assigns) == 1
        assert isinstance(assigns[0].rhs, ast.Number)

    def test_reg_initialiser_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_source("module m; reg r = 1'b0; endmodule")

    def test_memory_array_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_source("module m; reg [7:0] mem [0:255]; endmodule")

    def test_continuous_assign(self):
        module = single_module("module m(output y, input a, b); assign y = a & b; endmodule")
        assigns = [item for item in module.items if isinstance(item, ast.ContinuousAssign)]
        assert len(assigns) == 1
        assert isinstance(assigns[0].rhs, ast.Binary)

    def test_localparam(self):
        module = single_module("module m; localparam STATE = 3; endmodule")
        assert module.parameters()[0].local

    def test_initial_block_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_source("module m; initial begin end endmodule")

    def test_generate_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_source("module m; generate endgenerate endmodule")


class TestAlwaysBlocks:
    def test_sequential_always(self):
        module = single_module(
            "module m(input clk, input d); reg q; always @(posedge clk) q <= d; endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert not always.is_combinational
        assert always.events[0].edge == "posedge"

    def test_async_reset_sensitivity(self):
        module = single_module(
            "module m(input clk, input rst); reg q;"
            " always @(posedge clk or posedge rst) if (rst) q <= 0; else q <= 1; endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert [e.signal for e in always.events] == ["clk", "rst"]

    def test_combinational_star(self):
        module = single_module("module m(input a, output reg y); always @(*) y = a; endmodule")
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert always.is_combinational

    def test_level_sensitivity_list_is_combinational(self):
        module = single_module(
            "module m(input a, input b, output reg y); always @(a or b) y = a & b; endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert always.is_combinational

    def test_if_else_chain(self):
        module = single_module(
            "module m(input clk, input [1:0] s); reg [1:0] q;"
            " always @(posedge clk) if (s == 2'd0) q <= 1; else if (s == 2'd1) q <= 2; else q <= 3;"
            " endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert isinstance(always.body, ast.If)
        assert isinstance(always.body.otherwise, ast.If)

    def test_case_with_default(self):
        module = single_module(
            "module m(input clk, input [1:0] s); reg [3:0] q;"
            " always @(posedge clk) case (s) 2'd0: q <= 1; 2'd1, 2'd2: q <= 2; default: q <= 0; endcase"
            " endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        case = always.body
        assert isinstance(case, ast.Case)
        assert len(case.items) == 3
        assert case.items[1].labels and len(case.items[1].labels) == 2
        assert case.items[2].labels == ()

    def test_begin_end_block(self):
        module = single_module(
            "module m(input clk, input d); reg a; reg b;"
            " always @(posedge clk) begin a <= d; b <= a; end endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert isinstance(always.body, ast.Block)
        assert len(always.body.statements) == 2

    def test_blocking_vs_nonblocking(self):
        module = single_module(
            "module m(input a, output reg y); always @(*) y = a; endmodule"
        )
        always = next(item for item in module.items if isinstance(item, ast.Always))
        assert always.body.blocking


class TestInstances:
    def test_named_connections(self):
        module = single_module(
            "module top(input clk); child u1 (.clk(clk), .q(), .d(1'b0)); endmodule"
        )
        instance = module.instances()[0]
        assert instance.module == "child"
        assert instance.name == "u1"
        ports = {c.port for c in instance.connections}
        assert ports == {"clk", "q", "d"}
        q_connection = next(c for c in instance.connections if c.port == "q")
        assert q_connection.expr is None

    def test_positional_connections(self):
        module = single_module("module top(input a, input b, output y); andgate u (a, b, y); endmodule")
        instance = module.instances()[0]
        assert all(c.port is None for c in instance.connections)
        assert len(instance.connections) == 3

    def test_parameter_overrides(self):
        module = single_module("module top; child #(.W(16), .D(3)) u (); endmodule")
        instance = module.instances()[0]
        assert dict((name, value.value) for name, value in instance.parameters) == {"W": 16, "D": 3}

    def test_positional_parameter_overrides(self):
        module = single_module("module top; child #(16) u (); endmodule")
        assert module.instances()[0].parameters[0][0] is None


class TestExpressions:
    def _rhs(self, expression):
        module = single_module(f"module m; assign y = {expression}; endmodule")
        return next(item for item in module.items if isinstance(item, ast.ContinuousAssign)).rhs

    def test_precedence_mul_over_add(self):
        expr = self._rhs("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = self._rhs("a | b & c")
        assert expr.op == "|"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "&"

    def test_comparison_precedence(self):
        expr = self._rhs("a == b & c")
        # '&' binds weaker than '==' in Verilog
        assert expr.op == "&"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "=="

    def test_ternary(self):
        expr = self._rhs("sel ? a : b")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_associative(self):
        expr = self._rhs("s1 ? a : s2 ? b : c")
        assert isinstance(expr.otherwise, ast.Ternary)

    def test_concat(self):
        expr = self._rhs("{a, b, 2'b01}")
        assert isinstance(expr, ast.Concat)
        assert len(expr.parts) == 3

    def test_replication(self):
        expr = self._rhs("{4{a}}")
        assert isinstance(expr, ast.Repeat)

    def test_replication_of_concat(self):
        expr = self._rhs("{2{a, b}}")
        assert isinstance(expr, ast.Repeat)
        assert isinstance(expr.value, ast.Concat)

    def test_bit_select_and_part_select(self):
        expr = self._rhs("a[3] ^ b[7:4]")
        assert isinstance(expr.left, ast.Index)
        assert isinstance(expr.right, ast.RangeSelect)

    def test_unary_reduction(self):
        expr = self._rhs("^a")
        assert isinstance(expr, ast.Unary) and expr.op == "^"

    def test_parenthesised_select(self):
        expr = self._rhs("(a ^ b)[3:0]")
        assert isinstance(expr, ast.RangeSelect)

    def test_expr_identifiers_helper(self):
        expr = self._rhs("(a & b) | c[3]")
        assert ast.expr_identifiers(expr) == {"a", "b", "c"}

    def test_missing_operand_raises(self):
        with pytest.raises(VerilogSyntaxError):
            parse_source("module m; assign y = a + ; endmodule")
