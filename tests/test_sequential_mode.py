"""Tests for the sequential detection mode (bounded golden-model equivalence).

Covers the unroller core (:mod:`repro.core.unroll`), the mode's integration
with the session API / execution subsystem / result cache, the sequential
benchmarks that the combinational flow provably misses, and the CLI surface.
"""

import json

import pytest

from repro.api import Design, DetectionConfig, DetectionSession
from repro.cli import main as cli_main
from repro.core import SequentialUnroller, sequential_output_classes
from repro.core.events import (
    CexFound,
    ClassProven,
    PropertyScheduled,
    RunFinished,
    RunStarted,
    StructurallyDischarged,
)
from repro.core.report import DetectionReport, Verdict
from repro.errors import ConfigError, DesignError
from repro.exec import normalized_report_dict
from repro.rtl import elaborate_source
from repro.sim import trace_from_counterexample, trace_to_vcd_string
from repro.trusthub import load_design
from repro.trusthub.seq_trojans import SEQ_TROJAN_SPECS

GOLDEN_SOURCE = """
module acc(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] s1;
  reg [7:0] s2;
  always @(posedge clk) begin
    s1 <= din + 8'h11;
    s2 <= s1 ^ 8'h22;
  end
  assign dout = s2;
endmodule
"""

# Diverges from the golden model once an input-gated counter saturates at 5:
# the solver must *find* the arming sequence (en held high for five cycles),
# so below-threshold bounds are genuine UNSAT proofs, not constant folding.
TIMEBOMB_SOURCE = """
module acc(input clk, input en, input [7:0] din, output [7:0] dout);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [2:0] count;
  always @(posedge clk) begin
    s1 <= din + 8'h11;
    s2 <= s1 ^ 8'h22;
    if (en && count != 3'h5)
      count <= count + 3'h1;
  end
  assign dout = (count == 3'h5) ? ~s2 : s2;
endmodule
"""


@pytest.fixture
def golden_module():
    return elaborate_source(GOLDEN_SOURCE, "acc")


@pytest.fixture
def timebomb_module():
    return elaborate_source(TIMEBOMB_SOURCE, "acc")


class TestSequentialUnroller:
    def test_clean_design_discharges_structurally(self, golden_module):
        other = elaborate_source(GOLDEN_SOURCE.replace("module acc", "module gold"), "gold")
        unroller = SequentialUnroller(golden_module, other)
        result = unroller.check_outputs(["dout"], 6)
        assert result.holds
        assert result.structurally_proven
        assert result.solver_calls == 0

    def test_timebomb_caught_at_trigger_depth(self, timebomb_module, golden_module):
        unroller = SequentialUnroller(timebomb_module, golden_module)
        below = unroller.check_output("dout", 4)
        assert below.holds and not below.structurally_proven
        at_depth = unroller.check_output("dout", 5)
        assert not at_depth.holds
        assert at_depth.first_divergence_cycle == 5
        assert at_depth.failing_outputs == ["dout"]

    def test_counterexample_is_a_multi_cycle_trace(self, timebomb_module, golden_module):
        unroller = SequentialUnroller(timebomb_module, golden_module)
        cex = unroller.check_output("dout", 5).cex
        assert cex is not None
        times = sorted({time for (_inst, time, _sig) in cex.values})
        assert times == list(range(6))  # reset state plus five cycles
        # Both instances carry valuations; the design's counter is recorded.
        assert (0, 0, "count") in cex.values
        assert cex.value("dout", time=5, instance=0) != cex.value("dout", time=5, instance=1)

    def test_deeper_bound_reuses_clauses(self, timebomb_module, golden_module):
        # Depth 4 is the first bound whose trigger cone survives constant
        # folding (the counter can reach 4), so it encodes real clauses that
        # the depth-5 check must then reuse instead of re-encoding.
        unroller = SequentialUnroller(timebomb_module, golden_module)
        shallow = unroller.check_output("dout", 4)
        deeper = unroller.check_output("dout", 5)
        assert deeper.cnf_reused_clauses >= shallow.cnf_new_clauses > 0

    def test_output_classes_are_design_ordered_and_common(self, timebomb_module, golden_module):
        assert sequential_output_classes(timebomb_module, golden_module) == ["dout"]

    def test_disjoint_outputs_rejected(self, golden_module):
        other = elaborate_source(
            "module g(input clk, input [7:0] din, output [7:0] other);"
            " assign other = din; endmodule",
            "g",
        )
        with pytest.raises(DesignError):
            sequential_output_classes(golden_module, other)

    def test_unknown_reset_register_rejected(self, timebomb_module, golden_module):
        with pytest.raises(ConfigError):
            SequentialUnroller(timebomb_module, golden_module, reset_values={"nope": 1})

    def test_reset_value_rules_match_detection_config(self, timebomb_module, golden_module):
        # Direct unroller construction enforces the same value rules as
        # DetectionConfig.__post_init__ (shared helper): no negatives, no bools.
        with pytest.raises(ConfigError):
            SequentialUnroller(timebomb_module, golden_module, reset_values={"count": -1})
        with pytest.raises(ConfigError):
            SequentialUnroller(timebomb_module, golden_module, reset_values={"count": True})

    def test_oversized_reset_value_rejected_not_truncated(self, timebomb_module, golden_module):
        # 8 does not fit the 3-bit counter; silent truncation to 0 would
        # make the audit start from a different reset state than requested.
        with pytest.raises(ConfigError, match="does not fit"):
            SequentialUnroller(timebomb_module, golden_module, reset_values={"count": 8})
        assert SequentialUnroller(
            timebomb_module, golden_module, reset_values={"count": 7}
        )

    def test_reset_override_moves_the_trigger_closer(self, timebomb_module, golden_module):
        # Starting the bomb's counter at 4 leaves one cycle to the threshold.
        unroller = SequentialUnroller(
            timebomb_module, golden_module, reset_values={"count": 4}
        )
        result = unroller.check_output("dout", 1)
        assert not result.holds
        assert result.first_divergence_cycle == 1


class TestSequentialSessions:
    def _design(self, timebomb_module, golden_module):
        return Design.from_module(timebomb_module, name="bomb", golden=golden_module)

    def test_sequential_mode_needs_a_golden_model(self, timebomb_module):
        design = Design.from_module(timebomb_module)
        config = DetectionConfig(mode="sequential", depth=4)
        with pytest.raises(ConfigError, match="golden"):
            DetectionSession(design, config).run()

    def test_detects_at_depth_and_misses_below(self, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        secure = DetectionSession(design, DetectionConfig(mode="sequential", depth=4)).run()
        assert secure.is_secure
        flagged = DetectionSession(design, DetectionConfig(mode="sequential", depth=5)).run()
        assert flagged.verdict is Verdict.TROJAN_SUSPECTED
        outcome = flagged.failing_outcome()
        assert outcome.kind == "sequential"
        assert outcome.depth_reached == 5
        assert outcome.first_divergence_cycle == 5
        assert flagged.detected_by == outcome.label

    def test_sequential_reports_skip_the_coverage_check(self, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        report = DetectionSession(design, DetectionConfig(mode="sequential", depth=4)).run()
        assert report.coverage is None
        assert report.fanout_analysis is None

    def test_event_stream_carries_sequential_kinds_and_labels(self, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        session = DetectionSession(design, DetectionConfig(mode="sequential", depth=5))
        events = list(session.iter_results())
        assert isinstance(events[0], RunStarted)
        assert events[0].scheduled_classes == 1
        scheduled = [e for e in events if isinstance(e, PropertyScheduled)]
        assert scheduled and all(e.kind == "sequential" for e in scheduled)
        failures = [e for e in events if isinstance(e, CexFound)]
        assert failures and failures[-1].kind == "sequential"
        assert isinstance(events[-1], RunFinished)
        # Labels are kind-aware on the public event surface itself — no
        # per-consumer special-casing, no "init property" for class 0.
        for event in scheduled + failures:
            assert event.label == f"sequential property {event.index}"

    def test_report_round_trip_preserves_sequential_fields(self, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        report = DetectionSession(design, DetectionConfig(mode="sequential", depth=5)).run()
        data = json.loads(report.to_json())
        from repro.core.report import SCHEMA_VERSION

        assert data["schema_version"] == SCHEMA_VERSION
        rebuilt = DetectionReport.from_dict(data)
        assert rebuilt.to_dict() == report.to_dict()
        outcome = rebuilt.failing_outcome()
        assert outcome.depth_reached == 5
        assert outcome.first_divergence_cycle == 5
        assert "cycle 5" in rebuilt.summary()

    def test_counterexample_renders_as_vcd_waveform(self, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        report = DetectionSession(design, DetectionConfig(mode="sequential", depth=5)).run()
        trace = trace_from_counterexample(report.counterexample, instance=0)
        assert len(trace) == 6
        text = trace_to_vcd_string(trace, timebomb_module.signals)
        assert "$enddefinitions" in text and "dout" in text
        golden_trace = trace_from_counterexample(report.counterexample, instance=1)
        assert len(golden_trace) == 6

    def test_warm_cache_replays_with_zero_solver_calls(self, tmp_path, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        # simplify=False keeps the cold run on the CDCL path, so the
        # zero-solver-calls assertion on the warm replay stays meaningful.
        config = DetectionConfig(
            mode="sequential", depth=5, cache_dir=str(tmp_path), simplify=False
        )
        cold = DetectionSession(design, config).run()
        assert cold.cache_misses > 0 and cold.solver_calls > 0
        warm = DetectionSession(design, config).run()
        assert warm.cache_hits == cold.cache_misses
        assert warm.cache_misses == 0
        assert warm.solver_calls == 0
        assert normalized_report_dict(warm.to_dict()) == normalized_report_dict(cold.to_dict())

    def test_deeper_bound_misses_the_cache(self, tmp_path, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        base = DetectionConfig(mode="sequential", depth=4, cache_dir=str(tmp_path))
        DetectionSession(design, base).run()
        deeper = DetectionConfig(mode="sequential", depth=5, cache_dir=str(tmp_path))
        report = DetectionSession(design, deeper).run()
        assert report.cache_hits == 0

    def test_max_class_never_truncates_the_output_schedule(self, timebomb_module, golden_module):
        # max_class bounds combinational fanout iterations; truncating the
        # sequential output classes with it would turn a trojan on a
        # later-declared output into a vacuous SECURE verdict.
        design = self._design(timebomb_module, golden_module)
        config = DetectionConfig(mode="sequential", depth=5, max_class=0)
        report = DetectionSession(design, config).run()
        assert report.verdict is Verdict.TROJAN_SUSPECTED
        assert report.properties_checked() == 1

    def test_golden_top_without_source_fails_at_construction(self, timebomb_module):
        with pytest.raises(DesignError, match="golden source"):
            Design(timebomb_module, golden_top="gold")

    def test_jobs_1_vs_2_reports_are_normalized_equal(self, timebomb_module, golden_module):
        design = self._design(timebomb_module, golden_module)
        serial = DetectionSession(design, DetectionConfig(mode="sequential", depth=5)).run()
        pooled = DetectionSession(
            design, DetectionConfig(mode="sequential", depth=5, jobs=2)
        ).run()
        assert normalized_report_dict(serial.to_dict()) == normalized_report_dict(pooled.to_dict())


class TestSequentialBenchmarks:
    def test_catalogued_with_golden_tops(self):
        for name in SEQ_TROJAN_SPECS:
            bench = load_design(name)
            assert bench.family == "SEQ"
            assert bench.golden_top
            golden = bench.elaborate_golden()
            module = bench.elaborate()
            assert sequential_output_classes(module, golden)

    def test_uart_timebomb_missed_combinationally_caught_sequentially(self):
        spec = SEQ_TROJAN_SPECS["RS232-SEQ-T3000"]
        design = Design.from_benchmark(spec.name)
        # The combinational flow, with the benchmark's (deliberately wrong)
        # recommended waivers applied, proves the design secure — coverage
        # included: the trigger counter observes rxd, so it is covered.
        combinational = DetectionSession(design).run()
        assert combinational.is_secure
        assert combinational.coverage is not None and combinational.coverage.complete
        # The sequential mode finds the divergence at exactly the trigger
        # depth, with a multi-cycle witness...
        config = design.default_config(mode="sequential", depth=spec.threshold)
        flagged = DetectionSession(design, config).run()
        assert flagged.verdict is Verdict.TROJAN_SUSPECTED
        outcome = flagged.failing_outcome()
        assert outcome.first_divergence_cycle == spec.threshold
        assert ("rx_data", spec.threshold) in [
            (signal, time) for signal, time, _l, _r in flagged.counterexample.failing_signals
        ]
        # ... and a bound one cycle short provably cannot reach the trigger.
        shallow = design.default_config(mode="sequential", depth=spec.threshold - 1)
        assert DetectionSession(design, shallow).run().is_secure

    def test_uart_tx_bomb_caught_at_trigger_depth(self):
        spec = SEQ_TROJAN_SPECS["RS232-SEQ-T3100"]
        design = Design.from_benchmark(spec.name)
        config = design.default_config(mode="sequential", depth=spec.threshold)
        flagged = DetectionSession(design, config).run()
        assert flagged.verdict is Verdict.TROJAN_SUSPECTED
        assert "txd" in flagged.counterexample.signals_with_difference()

    def test_aes_gated_leaker_missed_combinationally_caught_sequentially(self):
        spec = SEQ_TROJAN_SPECS["AES-SEQ-T3000"]
        design = Design.from_benchmark(spec.name)
        combinational = DetectionSession(design).run()
        assert combinational.is_secure
        config = design.default_config(mode="sequential", depth=spec.threshold)
        flagged = DetectionSession(design, config).run()
        assert flagged.verdict is Verdict.TROJAN_SUSPECTED
        outcome = flagged.failing_outcome()
        assert outcome.first_divergence_cycle == spec.threshold
        assert "out" in flagged.counterexample.signals_with_difference()


class TestSequentialCli:
    def test_run_mode_sequential_flags_the_benchmark(self, capsys, tmp_path):
        vcd_path = tmp_path / "bomb.vcd"
        exit_code = cli_main([
            "run", "--benchmark", "RS232-SEQ-T3000",
            "--mode", "sequential", "--depth", "6",
            "--vcd", str(vcd_path), "--json",
        ])
        assert exit_code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "trojan-suspected"
        failing = [o for o in data["outcomes"] if not o["holds"]]
        assert failing and failing[0]["first_divergence_cycle"] == 6
        assert vcd_path.read_text().startswith("$date")

    def test_run_sequential_below_threshold_is_secure(self, capsys):
        exit_code = cli_main([
            "run", "--benchmark", "RS232-SEQ-T3000",
            "--mode", "sequential", "--depth", "5",
        ])
        assert exit_code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_verilog_run_requires_golden_top_for_sequential(self, capsys, tmp_path):
        path = tmp_path / "bomb.v"
        path.write_text(TIMEBOMB_SOURCE + "\n" + GOLDEN_SOURCE.replace("module acc", "module gold"))
        exit_code = cli_main([
            "run", "--verilog", str(path), "--top", "acc",
            "--mode", "sequential", "--depth", "5",
        ])
        assert exit_code == 2
        assert "golden" in capsys.readouterr().err

    def test_verilog_run_with_golden_top(self, capsys, tmp_path):
        path = tmp_path / "bomb.v"
        path.write_text(TIMEBOMB_SOURCE + "\n" + GOLDEN_SOURCE.replace("module acc", "module gold"))
        exit_code = cli_main([
            "run", "--verilog", str(path), "--top", "acc", "--golden-top", "gold",
            "--mode", "sequential", "--depth", "5", "--json",
        ])
        assert exit_code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "trojan-suspected"

    def test_reset_value_flag_reaches_the_unroller(self, capsys, tmp_path):
        path = tmp_path / "bomb.v"
        path.write_text(TIMEBOMB_SOURCE + "\n" + GOLDEN_SOURCE.replace("module acc", "module gold"))
        exit_code = cli_main([
            "run", "--verilog", str(path), "--top", "acc", "--golden-top", "gold",
            "--mode", "sequential", "--depth", "1", "--reset-value", "count=4",
        ])
        assert exit_code == 1
        assert "cycle 1" in capsys.readouterr().out

    def test_golden_path_without_golden_top_rejected(self, tmp_path):
        path = tmp_path / "bomb.v"
        path.write_text(TIMEBOMB_SOURCE)
        with pytest.raises(DesignError, match="golden_top"):
            Design.from_file(str(path), top="acc", golden_path=str(path))
        with pytest.raises(DesignError, match="golden_top"):
            Design.from_source(TIMEBOMB_SOURCE, top="acc", golden_source=GOLDEN_SOURCE)

    def test_vcd_write_failure_keeps_the_report_and_exit_code(self, capsys, tmp_path):
        exit_code = cli_main([
            "run", "--benchmark", "RS232-SEQ-T3000",
            "--mode", "sequential", "--depth", "6", "--json",
            "--vcd", str(tmp_path / "missing-dir" / "x.vcd"),
        ])
        captured = capsys.readouterr()
        assert exit_code == 1  # the audit's verdict, not an I/O error
        assert json.loads(captured.out)["verdict"] == "trojan-suspected"
        assert "cannot write VCD" in captured.err

    def test_golden_top_without_sequential_mode_is_a_usage_error(self, capsys, tmp_path):
        path = tmp_path / "bomb.v"
        path.write_text(TIMEBOMB_SOURCE + "\n" + GOLDEN_SOURCE.replace("module acc", "module gold"))
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "run", "--verilog", str(path), "--top", "acc",
                "--golden-top", "gold", "--depth", "5",  # --mode forgotten
            ])
        assert excinfo.value.code == 2
        assert "--mode sequential" in capsys.readouterr().err

    def test_malformed_reset_value_is_a_usage_error(self, capsys):
        exit_code = cli_main([
            "run", "--benchmark", "RS232-SEQ-T3000",
            "--mode", "sequential", "--reset-value", "oops",
        ])
        assert exit_code == 2
        assert "--reset-value" in capsys.readouterr().err
