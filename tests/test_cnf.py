"""Tests for the Tseitin CNF conversion."""

import itertools

from repro.aig.aig import AIG, FALSE, TRUE, negate
from repro.aig.cnf import CnfBuilder
from repro.sat.solver import SatSolver


def equivalent_under_all_inputs(aig, root, builder, cnf_literal, input_literals):
    """Check that the CNF constrains ``cnf_literal`` to the AIG value of ``root``."""
    for bits in itertools.product((0, 1), repeat=len(input_literals)):
        expected = aig.evaluate([root], {lit >> 1: bit for lit, bit in zip(input_literals, bits)})[0]
        solver = SatSolver()
        for clause in builder.cnf.clauses:
            solver.add_clause(clause)
        solver.ensure_vars(builder.cnf.num_vars)
        assumptions = []
        for literal, bit in zip(input_literals, bits):
            cnf_input = builder.literal_of(literal)
            assumptions.append(cnf_input if bit else -cnf_input)
        assumptions.append(cnf_literal if expected else -cnf_literal)
        if not solver.solve(assumptions=assumptions).satisfiable:
            return False
        # And the opposite value must be blocked.
        assumptions[-1] = -assumptions[-1]
        if solver.solve(assumptions=assumptions).satisfiable:
            return False
    return True


class TestTseitin:
    def test_constant_literals(self):
        aig = AIG()
        builder = CnfBuilder(aig)
        true_literal = builder.literal_of(TRUE)
        false_literal = builder.literal_of(FALSE)
        solver = SatSolver()
        for clause in builder.cnf.clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.satisfiable
        assert result.value(abs(true_literal)) is (true_literal > 0)
        assert not solver.solve(assumptions=[false_literal]).satisfiable

    def test_single_and_gate(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        root = aig.and_(a, b)
        builder = CnfBuilder(aig)
        literal = builder.literal_of(root)
        assert equivalent_under_all_inputs(aig, root, builder, literal, [a, b])

    def test_nested_logic(self):
        aig = AIG()
        a, b, c = (aig.add_input(x) for x in "abc")
        root = aig.or_(aig.xor(a, b), aig.and_(b, negate(c)))
        builder = CnfBuilder(aig)
        literal = builder.literal_of(root)
        assert equivalent_under_all_inputs(aig, root, builder, literal, [a, b, c])

    def test_complemented_root(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        root = negate(aig.and_(a, b))
        builder = CnfBuilder(aig)
        literal = builder.literal_of(root)
        assert equivalent_under_all_inputs(aig, root, builder, literal, [a, b])

    def test_shared_cone_encoded_once(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        shared = aig.and_(a, b)
        first_root = aig.or_(shared, a)
        second_root = aig.xor(shared, b)
        builder = CnfBuilder(aig)
        builder.literal_of(first_root)
        clauses_after_first = len(builder.cnf.clauses)
        builder.literal_of(second_root)
        # The shared AND gate must not be re-encoded, only the new XOR cone.
        assert len(builder.cnf.clauses) - clauses_after_first <= 9

    def test_input_only_cone_adds_no_clauses(self):
        aig = AIG()
        a = aig.add_input("a")
        builder = CnfBuilder(aig)
        before = len(builder.cnf.clauses)
        builder.literal_of(a)
        assert len(builder.cnf.clauses) == before
