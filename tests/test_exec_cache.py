"""Tests for the persistent result cache and its content fingerprints.

Correctness contract under test:

* the cache key changes on *any* netlist, config, or property mutation, so
  a stale entry can never be replayed for changed inputs;
* corrupt or foreign cache entries are ignored (plain misses), never fatal;
* ``use_cache=False`` (the CLI's ``--no-cache``) bypasses reads *and* writes;
* a warm rerun replays every proven class with zero SAT solver calls and a
  semantically identical report.
"""

import json

import pytest

from repro.api import Design, DetectionConfig, DetectionSession, Waiver
from repro.core.events import ClassProven, StructurallyDischarged
from repro.exec import (
    ResultCache,
    class_cache_key,
    config_fingerprint,
    module_fingerprint,
    normalized_report_dict,
)
from repro.rtl import elaborate_source

CLEAN_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] s1;
  reg [7:0] s2;
  always @(posedge clk) begin
    s1 <= d ^ 8'h5a;
    s2 <= s1 + 8'h01;
  end
  assign q = s2;
endmodule
"""

MUTATED_SOURCE = CLEAN_SOURCE.replace("8'h01", "8'h02")

TROJANED_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  reg [3:0] bomb;
  always @(posedge clk) begin
    stage <= d + 8'h1;
    bomb <= bomb + 4'h1;
  end
  assign q = (bomb == 4'hf) ? ~stage : stage;
endmodule
"""


class TestFingerprints:
    def test_module_fingerprint_is_deterministic_across_elaborations(self):
        one = module_fingerprint(elaborate_source(CLEAN_SOURCE, "widget"))
        two = module_fingerprint(elaborate_source(CLEAN_SOURCE, "widget"))
        assert one == two

    def test_module_fingerprint_changes_on_netlist_mutation(self):
        clean = module_fingerprint(elaborate_source(CLEAN_SOURCE, "widget"))
        mutated = module_fingerprint(elaborate_source(MUTATED_SOURCE, "widget"))
        assert clean != mutated

    def test_module_fingerprint_handles_deep_expressions(self):
        # The AES core's S-box muxing produces deep trees; the canonical
        # walk must stay iterative.
        design = Design.from_benchmark("AES-HT-FREE")
        assert len(module_fingerprint(design.module)) == 64

    def test_config_fingerprint_covers_semantic_fields(self):
        base = config_fingerprint(DetectionConfig(), "python")
        assert base != config_fingerprint(DetectionConfig(inputs=["a"]), "python")
        assert base != config_fingerprint(
            DetectionConfig(cumulative_assumptions=False), "python"
        )
        assert base != config_fingerprint(
            DetectionConfig(assume_inputs_at_prove_time=False), "python"
        )
        assert base != config_fingerprint(
            DetectionConfig(waivers=[Waiver("x")]), "python"
        )
        assert base != config_fingerprint(DetectionConfig(), "pysat-like")

    def test_config_fingerprint_ignores_execution_only_fields(self):
        # jobs / cache settings / stop & truncation policy never change a
        # single class's result, so they must share cache entries.
        base = config_fingerprint(DetectionConfig(), "python")
        assert base == config_fingerprint(DetectionConfig(jobs=4), "python")
        assert base == config_fingerprint(
            DetectionConfig(cache_dir="/tmp/x", use_cache=False), "python"
        )
        assert base == config_fingerprint(
            DetectionConfig(stop_at_first_failure=False), "python"
        )
        assert base == config_fingerprint(DetectionConfig(max_class=1), "python")

    def test_class_key_distinguishes_indices(self):
        keys = {class_cache_key("m", "c", index) for index in range(8)}
        assert len(keys) == 8

    # Every (field, mutation) pair that can change a property's outcome.
    # The base config each mutation is compared against must already enable
    # the field (depth/reset_values are sequential-only), hence the
    # per-entry base kwargs.  If a future DetectionConfig field lands
    # without a row here *and* without a fingerprint feed, the completeness
    # check below fails — the cache can never be silently poisoned again.
    _SEMANTIC_MUTATIONS = [
        (dict(), dict(inputs=["a"])),
        (dict(), dict(cumulative_assumptions=False)),
        (dict(), dict(assume_inputs_at_prove_time=False)),
        (dict(), dict(waivers=[Waiver("x")])),
        (dict(), dict(mode="sequential")),
        (dict(mode="sequential"), dict(mode="sequential", depth=11)),
        (
            dict(mode="sequential"),
            dict(mode="sequential", reset_values={"count": 1}),
        ),
        # Preprocessing knobs: verdicts and witnesses are identical either
        # way, but the telemetry a record carries (sim vs solver counters)
        # is per-configuration, so simplified and plain runs never alias.
        (dict(), dict(simplify=False)),
        (dict(), dict(sim_patterns=128)),
        (dict(), dict(fraig_rounds=2)),
        (dict(), dict(inprocess=False)),
        # Cube splitting: the budget decides whether a class settles as one
        # record or as a split + cube-verdict family, and the depth decides
        # the cube set itself — entries from different splitting regimes
        # must never alias.
        (dict(), dict(split=False)),
        (dict(), dict(split_conflicts=50000)),
        (dict(), dict(split_depth=3)),
        # A check deadline changes which classes settle vs. degrade to an
        # inconclusive timeout outcome, so timed and untimed runs (and runs
        # with different deadlines) must never share cache entries.
        (dict(), dict(check_timeout_s=5.0)),
    ]
    # ``sim_backend`` is execution-only by a stronger argument than the
    # scheduling knobs: the numpy and Python kernels are bit-identical, so
    # no record bit can depend on it (tests/test_sim_backends.py).
    # ``task_retries`` only decides how many times a task is re-queued after
    # a worker crash before quarantine; a surviving task's record is
    # byte-identical however many retries it took.
    _EXECUTION_ONLY_FIELDS = {
        "stop_at_first_failure", "max_class", "jobs", "cache_dir", "use_cache",
        "sim_backend", "trace", "task_retries",
    }
    # Hashed through config_fingerprint's resolved backend_name parameter
    # (never the raw field, which may read "auto"); sensitivity is asserted
    # by test_config_fingerprint_covers_semantic_fields above.
    _HASHED_VIA_BACKEND_NAME = {"solver_backend"}

    @pytest.mark.parametrize("base_kwargs, mutated_kwargs", _SEMANTIC_MUTATIONS)
    def test_every_semantic_field_flips_the_fingerprint(self, base_kwargs, mutated_kwargs):
        base = config_fingerprint(DetectionConfig(**base_kwargs), "python")
        mutated = config_fingerprint(DetectionConfig(**mutated_kwargs), "python")
        assert base != mutated, f"fingerprint blind to {mutated_kwargs}"

    def test_semantic_mutation_table_covers_every_config_field(self):
        # Regression guard: a newly added DetectionConfig field must either
        # appear in the mutation table (it affects results and is hashed) or
        # be explicitly listed as execution-only (it never affects results).
        import dataclasses

        all_fields = {field.name for field in dataclasses.fields(DetectionConfig)}
        mutated = {name for _base, change in self._SEMANTIC_MUTATIONS for name in change}
        unaccounted = (
            all_fields - mutated - self._EXECUTION_ONLY_FIELDS - self._HASHED_VIA_BACKEND_NAME
        )
        assert not unaccounted, (
            f"DetectionConfig field(s) {sorted(unaccounted)} are neither in the "
            f"fingerprint-sensitivity table nor declared execution-only; add "
            f"them to one (and to config_fingerprint if they change results)"
        )

    def test_sequential_fingerprint_ignores_combinational_only_knobs(self):
        # Waivers, traced inputs and the property-shape switches play no
        # role in the golden-model check; hashing them would make a warm
        # sequential cache go cold on e.g. --no-recommended-waivers.
        base = config_fingerprint(DetectionConfig(mode="sequential"), "python")
        assert base == config_fingerprint(
            DetectionConfig(mode="sequential", waivers=[Waiver("x")]), "python"
        )
        assert base == config_fingerprint(
            DetectionConfig(mode="sequential", inputs=["a"]), "python"
        )
        assert base == config_fingerprint(
            DetectionConfig(mode="sequential", cumulative_assumptions=False), "python"
        )
        # ... and symmetrically, sequential-only knobs never touch
        # combinational keys (asserted for depth/reset in the table above).

    def test_pair_fingerprint_covers_the_golden_model(self):
        from repro.exec.fingerprint import pair_module_fingerprint

        design = module_fingerprint(elaborate_source(CLEAN_SOURCE, "widget"))
        golden = module_fingerprint(elaborate_source(MUTATED_SOURCE, "widget"))
        paired = pair_module_fingerprint(design, golden)
        assert paired != pair_module_fingerprint(design, design)
        assert paired != pair_module_fingerprint(golden, design)  # order matters
        assert paired != design and paired != golden


class TestResultCacheStore:
    def test_round_trip_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = class_cache_key("m", "c", 0)
        assert cache.get(key) is None
        cache.put(key, {"payload": 1})
        assert cache.get(key) == {"payload": 1}
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for index in range(3):
            cache.put(class_cache_key("m", "c", index), {"index": index})
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = class_cache_key("m", "c", 0)
        cache.put(key, {"payload": 1})
        cache._path_for(key).write_text("garbage, not json")
        assert cache.get(key) is None
        assert cache.corrupt_skipped == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # A file renamed/copied to the wrong address must not be trusted.
        cache = ResultCache(str(tmp_path))
        key_a = class_cache_key("m", "c", 0)
        key_b = class_cache_key("m", "c", 1)
        cache.put(key_a, {"payload": 1})
        path_b = cache._path_for(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_text(cache._path_for(key_a).read_text())
        assert cache.get(key_b) is None
        assert cache.corrupt_skipped == 1

    def test_wrong_cache_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = class_cache_key("m", "c", 0)
        cache.put(key, {"payload": 1})
        path = cache._path_for(key)
        entry = json.loads(path.read_text())
        entry["cache_schema"] = 999
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None


def _run(source, cache_dir, **overrides):
    design = Design.from_source(source, top="widget")
    config = DetectionConfig(cache_dir=cache_dir, **overrides)
    return DetectionSession(design, config=config).run()


class TestCachedAudits:
    def test_warm_rerun_replays_without_solver_work(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = _run(CLEAN_SOURCE, cache_dir)
        warm = _run(CLEAN_SOURCE, cache_dir)
        assert cold.cache_hits == 0 and cold.cache_misses == len(cold.outcomes)
        assert warm.cache_hits == len(warm.outcomes) and warm.cache_misses == 0
        assert warm.solver_calls == 0
        assert normalized_report_dict(warm.to_dict()) == normalized_report_dict(
            cold.to_dict()
        )

    def test_warm_rerun_emits_replay_marked_events(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _run(CLEAN_SOURCE, cache_dir)
        design = Design.from_source(CLEAN_SOURCE, top="widget")
        session = DetectionSession(design, config=DetectionConfig(cache_dir=cache_dir))
        terminals = [
            event
            for event in session.iter_results()
            if isinstance(event, (StructurallyDischarged, ClassProven))
        ]
        assert terminals and all(event.from_cache for event in terminals)

    def test_netlist_mutation_invalidates_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _run(CLEAN_SOURCE, cache_dir)
        mutated = _run(MUTATED_SOURCE, cache_dir)
        assert mutated.cache_hits == 0

    def test_config_mutation_invalidates_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _run(CLEAN_SOURCE, cache_dir)
        strict = _run(CLEAN_SOURCE, cache_dir, cumulative_assumptions=False)
        assert strict.cache_hits == 0

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = _run(CLEAN_SOURCE, cache_dir, use_cache=False)
        assert first.cache_hits == 0 and first.cache_misses == 0
        # Nothing was written, so a cache-enabled run is fully cold...
        cold = _run(CLEAN_SOURCE, cache_dir)
        assert cold.cache_hits == 0
        # ...and --no-cache on a warm directory still re-proves everything.
        bypass = _run(CLEAN_SOURCE, cache_dir, use_cache=False)
        assert bypass.cache_hits == 0

    def test_corrupt_entry_forces_reproof_of_that_class_only(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = _run(CLEAN_SOURCE, cache_dir)
        assert len(cold.outcomes) >= 2
        cache = ResultCache(cache_dir)
        corrupted = next(iter(cache._entry_paths()))
        corrupted.write_text("{ not json")
        warm = _run(CLEAN_SOURCE, cache_dir)
        assert warm.cache_hits == len(cold.outcomes) - 1
        assert warm.cache_misses == 1
        assert normalized_report_dict(warm.to_dict()) == normalized_report_dict(
            cold.to_dict()
        )

    def test_cached_failure_replays_counterexample_and_diagnosis(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = _run(TROJANED_SOURCE, cache_dir)
        assert cold.trojan_detected and cold.counterexample is not None
        warm = _run(TROJANED_SOURCE, cache_dir)
        assert warm.solver_calls == 0
        assert warm.cache_hits == len(cold.outcomes)
        assert warm.detected_by == cold.detected_by
        assert warm.counterexample is not None
        assert warm.counterexample.failing_signals == cold.counterexample.failing_signals
        assert warm.diagnosis is not None
        assert [c.signal for c in warm.diagnosis.causes] == [
            c.signal for c in cold.diagnosis.causes
        ]
        assert normalized_report_dict(warm.to_dict()) == normalized_report_dict(
            cold.to_dict()
        )

    def test_unusable_cache_dir_degrades_to_cache_off(self, tmp_path):
        # A path that cannot become a directory (a file in the way) must not
        # abort the audit; the run completes with cache-off behaviour.
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        report = _run(CLEAN_SOURCE, str(blocker))
        assert report.is_secure
        assert report.cache_hits == 0
        assert blocker.is_file()  # nothing clobbered it

    def test_stats_does_not_create_the_directory(self, tmp_path):
        missing = tmp_path / "never-created"
        stats = ResultCache(str(missing)).stats()
        assert stats["entries"] == 0
        assert not missing.exists()

    def test_truncated_run_warms_the_full_run(self, tmp_path):
        # max_class is not part of the fingerprint: classes proven by a
        # truncated audit replay inside a later, deeper audit.
        cache_dir = str(tmp_path / "cache")
        _run(CLEAN_SOURCE, cache_dir, max_class=1)
        full = _run(CLEAN_SOURCE, cache_dir)
        assert full.cache_hits == 1
        assert full.cache_misses == len(full.outcomes) - 1
