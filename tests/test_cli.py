"""Tests for the repro-ht-detect subcommand CLI (a thin consumer of repro.api)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.report import SCHEMA_VERSION, DetectionReport


CLEAN_DESIGN = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  always @(posedge clk) stage <= d + 8'h1;
  assign q = stage;
endmodule
"""

TROJANED_DESIGN = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  reg [15:0] bomb;
  always @(posedge clk) begin
    stage <= d + 8'h1;
    bomb <= bomb + 16'h1;
  end
  assign q = (bomb == 16'hffff) ? ~stage : stage;
endmodule
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.v"
    path.write_text(CLEAN_DESIGN)
    return str(path)


@pytest.fixture
def trojaned_file(tmp_path):
    path = tmp_path / "trojan.v"
    path.write_text(TROJANED_DESIGN)
    return str(path)


class TestArgumentParsing:
    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_verilog_and_benchmark_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--verilog", "x.v", "--benchmark", "AES-T100"])

    def test_top_required_with_verilog(self, clean_file):
        with pytest.raises(SystemExit):
            main(["run", "--verilog", clean_file])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestLegacyInvocation:
    """The pre-subcommand flag style still works, mapped onto `run`."""

    def test_legacy_verilog_mode(self, clean_file, capsys):
        assert main(["--verilog", clean_file, "--top", "widget"]) == 0
        captured = capsys.readouterr()
        assert "SECURE" in captured.out
        assert "deprecated" in captured.err

    def test_legacy_list_benchmarks(self, capsys):
        assert main(["--list-benchmarks"]) == 0
        assert "AES-T1400" in capsys.readouterr().out


class TestRunVerilog:
    def test_clean_design_exits_zero(self, clean_file, capsys):
        assert main(["run", "--verilog", clean_file, "--top", "widget"]) == 0
        assert "SECURE" in capsys.readouterr().out

    def test_trojaned_design_exits_one(self, trojaned_file, capsys):
        assert main(["run", "--verilog", trojaned_file, "--top", "widget"]) == 1
        output = capsys.readouterr().out
        assert "TROJAN" in output or "UNCOVERED" in output

    def test_waiver_flag(self, trojaned_file, capsys):
        exit_code = main(["run", "--verilog", trojaned_file, "--top", "widget",
                          "--waive", "bomb"])
        # The waived counter no longer fails a property, but the coverage
        # check still reports it (it is outside the input cone).
        assert exit_code == 1
        assert "coverage" in capsys.readouterr().out

    def test_verbose_streams_property_events(self, clean_file, capsys):
        main(["run", "--verilog", clean_file, "--top", "widget", "--verbose"])
        output = capsys.readouterr().out
        assert "scheduled init property" in output
        assert "holds" in output

    def test_missing_file_reports_error(self, capsys):
        assert main(["run", "--verilog", "/nonexistent/file.v", "--top", "x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_verilog_reports_error(self, tmp_path, capsys):
        path = tmp_path / "broken.v"
        path.write_text("module broken(input a; endmodule")
        assert main(["run", "--verilog", str(path), "--top", "broken"]) == 2

    def test_explicit_inputs_flag(self, clean_file):
        assert main(["run", "--verilog", clean_file, "--top", "widget", "--inputs", "d"]) == 0

    def test_inputs_with_whitespace_are_stripped(self, clean_file):
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--inputs", " d "]) == 0

    def test_empty_input_entry_is_a_config_error(self, clean_file, capsys):
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--inputs", "d,,q"]) == 2
        assert "empty signal name" in capsys.readouterr().err

    def test_duplicate_input_entry_is_a_config_error(self, clean_file, capsys):
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--inputs", "d,d"]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_strict_paper_properties_flag(self, clean_file):
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--strict-paper-properties"]) == 0


class TestRunJson:
    def test_json_report_round_trips(self, trojaned_file, capsys):
        assert main(["run", "--verilog", trojaned_file, "--top", "widget", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["verdict"] == "trojan-suspected"
        restored = DetectionReport.from_dict(data)
        assert restored.to_dict() == data

    def test_json_with_verbose_keeps_stdout_parseable(self, clean_file, capsys):
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--json", "--verbose"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)  # events went to stderr, not stdout
        assert data["schema_version"] == SCHEMA_VERSION
        assert "scheduled init property" in captured.err

    def test_output_file(self, clean_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--output", str(out)]) == 0
        # summary still on stdout, JSON in the file
        assert "SECURE" in capsys.readouterr().out
        restored = DetectionReport.from_json(out.read_text())
        assert restored.is_secure


class TestRunBenchmark:
    def test_trojaned_benchmark_detected(self, capsys):
        assert main(["run", "--benchmark", "AES-T1400"]) == 1
        assert "init property" in capsys.readouterr().out

    def test_benchmark_json_round_trips(self, capsys):
        assert main(["run", "--benchmark", "AES-T1400", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["design"] == "AES-T1400"
        assert DetectionReport.from_dict(data).to_dict() == data

    def test_unknown_benchmark_reports_error(self, capsys):
        assert main(["run", "--benchmark", "AES-T0"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_check_all_flag(self, capsys):
        assert main(["run", "--benchmark", "AES-T2500", "--check-all"]) == 1

    def test_max_class_flag(self, capsys):
        # Truncating the flow checks fewer properties; the structural coverage
        # check still passes, so the clean design stays secure.
        assert main(["run", "--benchmark", "RS232-HT-FREE", "--max-class", "1",
                     "--verbose"]) == 0
        assert "fanout property" not in capsys.readouterr().out


class TestListBenchmarks:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "AES-T1400" in output and "BasicRSA-T300" in output and "RS232-T2400" in output

    def test_family_filter(self, capsys):
        assert main(["list-benchmarks", "--family", "RS232"]) == 0
        output = capsys.readouterr().out
        assert "RS232-T2400" in output and "AES-T1400" not in output

    def test_unknown_family(self, capsys):
        with pytest.raises(SystemExit):
            main(["list-benchmarks", "--family", "Z80"])


class TestBatch:
    def test_batch_clean_designs(self, capsys):
        assert main(["batch", "RS232-HT-FREE", "BasicRSA-HT-FREE"]) == 0
        output = capsys.readouterr().out
        assert "2 design(s)" in output and "secure" in output

    def test_batch_flags_trojans(self, capsys):
        assert main(["batch", "RS232-HT-FREE", "RS232-T2400"]) == 1
        assert "trojan-suspected" in capsys.readouterr().out

    def test_batch_family_selection(self, capsys):
        assert main(["batch", "--family", "RS232", "--clean-only"]) == 0
        assert "RS232-HT-FREE" in capsys.readouterr().out

    def test_batch_needs_a_selection(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch"])

    def test_batch_json(self, capsys):
        assert main(["batch", "RS232-HT-FREE", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert len(data["reports"]) == 1

    def test_batch_duplicate_names_deduplicated(self, capsys):
        assert main(["batch", "RS232-HT-FREE", "RS232-HT-FREE"]) == 0
        assert "1 design(s)" in capsys.readouterr().out


class TestExecutionFlags:
    def test_jobs_flag_runs_parallel(self, clean_file, capsys):
        assert main(["run", "--verilog", clean_file, "--top", "widget",
                     "--jobs", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        # The report carries *effective* parallelism: this one-class design
        # produces a single shard, so only one worker ever runs.
        assert data["execution"]["workers"] == 1

    def test_cache_dir_warm_rerun_reports_hits(self, clean_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        base = ["run", "--verilog", clean_file, "--top", "widget",
                "--cache-dir", cache_dir, "--json"]
        assert main(base) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["execution"]["cache_hits"] == 0
        assert cold["execution"]["cache_misses"] > 0
        assert main(base) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["execution"]["cache_hits"] == cold["execution"]["cache_misses"]
        assert warm["solver"]["calls"] == 0

    def test_no_cache_bypasses_a_warm_cache(self, clean_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        base = ["run", "--verilog", clean_file, "--top", "widget",
                "--cache-dir", cache_dir, "--json"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--no-cache"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["execution"]["cache_hits"] == 0

    def test_batch_jobs_flag(self, capsys):
        assert main(["batch", "RS232-HT-FREE", "--jobs", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["execution"]["workers"] == 2

    def test_cache_stats_and_clear(self, clean_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["run", "--verilog", clean_file, "--top", "widget",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_requires_an_action_and_dir(self):
        with pytest.raises(SystemExit):
            main(["cache"])
        with pytest.raises(SystemExit):
            main(["cache", "stats"])


class TestReportSubcommand:
    def test_report_renders_saved_run(self, trojaned_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["run", "--verilog", trojaned_file, "--top", "widget", "--output", str(out)])
        capsys.readouterr()
        assert main(["report", str(out)]) == 1
        assert "TROJAN-SUSPECTED" in capsys.readouterr().out

    def test_report_renders_saved_batch(self, tmp_path, capsys):
        out = tmp_path / "batch.json"
        main(["batch", "RS232-HT-FREE", "--output", str(out)])
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        assert "1 design(s)" in capsys.readouterr().out

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/report.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("not json at all")
        assert main(["report", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_wrong_schema_version(self, tmp_path, capsys):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": 999, "design": "x", "verdict": "secure"}))
        assert main(["report", str(path)]) == 2
        assert "schema_version" in capsys.readouterr().err
