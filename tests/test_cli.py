"""Tests for the repro-ht-detect command-line interface."""

import pytest

from repro.cli import build_parser, main


CLEAN_DESIGN = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  always @(posedge clk) stage <= d + 8'h1;
  assign q = stage;
endmodule
"""

TROJANED_DESIGN = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  reg [15:0] bomb;
  always @(posedge clk) begin
    stage <= d + 8'h1;
    bomb <= bomb + 16'h1;
  end
  assign q = (bomb == 16'hffff) ? ~stage : stage;
endmodule
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.v"
    path.write_text(CLEAN_DESIGN)
    return str(path)


@pytest.fixture
def trojaned_file(tmp_path):
    path = tmp_path / "trojan.v"
    path.write_text(TROJANED_DESIGN)
    return str(path)


class TestArgumentParsing:
    def test_parser_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verilog_and_benchmark_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--verilog", "x.v", "--benchmark", "AES-T100"])

    def test_top_required_with_verilog(self, clean_file, capsys):
        with pytest.raises(SystemExit):
            main(["--verilog", clean_file])


class TestVerilogMode:
    def test_clean_design_exits_zero(self, clean_file, capsys):
        assert main(["--verilog", clean_file, "--top", "widget"]) == 0
        assert "SECURE" in capsys.readouterr().out

    def test_trojaned_design_exits_one(self, trojaned_file, capsys):
        assert main(["--verilog", trojaned_file, "--top", "widget"]) == 1
        output = capsys.readouterr().out
        assert "TROJAN" in output or "UNCOVERED" in output

    def test_waiver_flag(self, trojaned_file, capsys):
        exit_code = main(["--verilog", trojaned_file, "--top", "widget", "--waive", "bomb"])
        # The waived counter no longer fails a property, but the coverage
        # check still reports it (it is outside the input cone).
        assert exit_code == 1
        assert "coverage" in capsys.readouterr().out

    def test_verbose_prints_per_property_lines(self, clean_file, capsys):
        main(["--verilog", clean_file, "--top", "widget", "--verbose"])
        assert "init property" in capsys.readouterr().out

    def test_missing_file_reports_error(self, capsys):
        assert main(["--verilog", "/nonexistent/file.v", "--top", "x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_verilog_reports_error(self, tmp_path, capsys):
        path = tmp_path / "broken.v"
        path.write_text("module broken(input a; endmodule")
        assert main(["--verilog", str(path), "--top", "broken"]) == 2

    def test_explicit_inputs_flag(self, clean_file):
        assert main(["--verilog", clean_file, "--top", "widget", "--inputs", "d"]) == 0

    def test_strict_paper_properties_flag(self, clean_file):
        assert main(["--verilog", clean_file, "--top", "widget", "--strict-paper-properties"]) == 0


class TestBenchmarkMode:
    def test_list_benchmarks(self, capsys):
        assert main(["--list-benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "AES-T1400" in output and "BasicRSA-T300" in output and "RS232-T2400" in output

    def test_trojaned_benchmark_detected(self, capsys):
        assert main(["--benchmark", "AES-T1400"]) == 1
        assert "init property" in capsys.readouterr().out

    def test_unknown_benchmark_reports_error(self, capsys):
        assert main(["--benchmark", "AES-T0"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_check_all_flag(self, capsys):
        assert main(["--benchmark", "AES-T2500", "--check-all"]) == 1
