"""Unit and property-based tests for repro.utils.bitvec."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitvec import (
    from_bits,
    mask,
    popcount,
    rotate_left,
    rotate_right,
    signed_value,
    to_bits,
    truncate,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(8) == 0xFF

    def test_wide(self):
        assert mask(128) == (1 << 128) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestTruncate:
    def test_in_range_value_unchanged(self):
        assert truncate(0x3C, 8) == 0x3C

    def test_overflow_wraps(self):
        assert truncate(0x1FF, 8) == 0xFF

    def test_negative_becomes_twos_complement(self):
        assert truncate(-1, 4) == 0xF


class TestSignedValue:
    def test_positive(self):
        assert signed_value(3, 8) == 3

    def test_negative(self):
        assert signed_value(0xFF, 8) == -1
        assert signed_value(0x80, 8) == -128

    def test_zero_width(self):
        assert signed_value(0, 0) == 0

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0))
    def test_range(self, width, value):
        result = signed_value(value, width)
        assert -(1 << (width - 1)) <= result < (1 << (width - 1))


class TestBitsRoundtrip:
    def test_to_bits_lsb_first(self):
        assert to_bits(0b1011, 4) == [1, 1, 0, 1]

    def test_from_bits(self):
        assert from_bits([1, 1, 0, 1]) == 0b1011

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=64, max_value=80))
    def test_roundtrip(self, value, width):
        assert from_bits(to_bits(value, width)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=70))
    def test_inverse_roundtrip(self, bits):
        assert to_bits(from_bits(bits), len(bits)) == bits


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount(0xFF) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-5)

    @given(st.integers(min_value=0, max_value=2**80))
    def test_matches_bin_count(self, value):
        assert popcount(value) == bin(value).count("1")


class TestRotate:
    def test_rotate_left_simple(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010

    def test_rotate_left_wraps(self):
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_rotate_right_is_inverse(self):
        assert rotate_right(rotate_left(0xA5, 3, 8), 3, 8) == 0xA5

    def test_zero_width(self):
        assert rotate_left(5, 3, 0) == 0

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_full_rotation_identity(self, value, amount, width):
        value = truncate(value, width)
        assert rotate_left(value, amount + width, width) == rotate_left(value, amount, width)
