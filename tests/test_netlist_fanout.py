"""Tests for the structural netlist views and the fanouts_CCk partitioning."""

import pytest

from repro.rtl import DependencyGraph, compute_fanout_classes, elaborate_source, get_fanout


class TestDependencyGraph:
    def test_leaf_support_of_output(self, pipeline_module):
        graph = DependencyGraph(pipeline_module)
        assert graph.leaf_support("dout") == {"s2"}

    def test_leaf_support_of_leaf_is_itself(self, pipeline_module):
        graph = DependencyGraph(pipeline_module)
        assert graph.leaf_support("s1") == {"s1"}
        assert graph.leaf_support("din") == {"din"}

    def test_next_state_leaf_support(self, pipeline_module):
        graph = DependencyGraph(pipeline_module)
        assert graph.next_state_leaf_support("s1") == {"din"}
        assert graph.next_state_leaf_support("s2") == {"s1"}

    def test_next_state_support_through_comb_wire(self):
        module = elaborate_source(
            "module m(input clk, input [3:0] a, input [3:0] b, output [3:0] q);"
            " wire [3:0] sum; assign sum = a + b; reg [3:0] r;"
            " always @(posedge clk) r <= sum; assign q = r; endmodule",
            "m",
        )
        graph = DependencyGraph(module)
        assert graph.next_state_leaf_support("r") == {"a", "b"}

    def test_signals_depending_on(self, trojaned_module):
        graph = DependencyGraph(trojaned_module)
        assert graph.signals_depending_on({"din"}) == {"s1"}
        assert graph.signals_depending_on({"trig"}) == {"trig", "dout"}

    def test_cycle_graph_nodes(self, pipeline_module):
        graph = DependencyGraph(pipeline_module).cycle_graph()
        assert set(graph.nodes) == {"din", "s1", "s2", "dout"}

    def test_get_fanout_wrapper_accepts_module(self, pipeline_module):
        assert get_fanout(pipeline_module, ["din"]) == {"s1"}


class TestFanoutClasses:
    def test_pipeline_classes(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        assert analysis.classes[1] == {"s1"}
        assert analysis.classes[2] == {"s2", "dout"}
        assert analysis.depth == 2
        assert not analysis.uncovered

    def test_distance_map(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        assert analysis.distance == {"s1": 1, "s2": 2, "dout": 2}

    def test_signals_up_to(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        assert analysis.signals_up_to(1) == {"s1"}
        assert analysis.signals_up_to(2) == {"s1", "s2", "dout"}

    def test_trojan_counter_is_covered_but_self_looping(self, trojaned_module):
        analysis = compute_fanout_classes(trojaned_module)
        # trig never depends on an input -> uncovered
        assert "trig" in analysis.uncovered

    def test_uncovered_payload_detected(self, uncovered_trojan_module):
        analysis = compute_fanout_classes(uncovered_trojan_module)
        assert {"timer", "beacon"} <= analysis.uncovered

    def test_output_placement_uses_latest_register(self):
        module = elaborate_source(
            "module m(input clk, input [3:0] a, output [3:0] y);"
            " reg [3:0] r1; reg [3:0] r2;"
            " always @(posedge clk) begin r1 <= a; r2 <= r1; end"
            " assign y = r1 ^ r2; endmodule",
            "m",
        )
        analysis = compute_fanout_classes(module)
        assert analysis.distance["y"] == 1
        assert analysis.placement["y"] == 2

    def test_output_with_direct_input_path_is_class_one(self):
        module = elaborate_source(
            "module m(input clk, input [3:0] a, output [3:0] y); assign y = ~a; endmodule", "m"
        )
        analysis = compute_fanout_classes(module)
        assert analysis.placement["y"] == 1

    def test_explicit_input_selection(self, counter_module):
        analysis = compute_fanout_classes(counter_module, inputs=["en"])
        assert "u_cnt.cnt" in analysis.distance

    def test_proved_in_class(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        assert analysis.proved_in_class(2) == {"s2", "dout"}

    def test_placement_depth_at_least_depth(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        assert analysis.placement_depth >= analysis.depth
