"""Tests for the IPC layer: properties, frames and the engine."""

import pytest

from repro.errors import PropertyError
from repro.ipc import (
    CounterExample,
    Equality,
    IntervalProperty,
    IpcEngine,
    Term,
    TransitionEncoder,
)
from repro.ipc.prop import pairwise_equalities
from repro.rtl import elaborate_source, exprs


class TestIntervalProperty:
    def test_requires_name(self):
        with pytest.raises(PropertyError):
            IntervalProperty(name="")

    def test_validate_requires_commitments(self):
        prop = IntervalProperty(name="p")
        prop.assume_equal("a", 0)
        with pytest.raises(PropertyError):
            prop.validate()

    def test_window_spans_latest_time(self):
        prop = IntervalProperty(name="p")
        prop.assume_equal("a", 0)
        prop.prove_equal("b", 3)
        assert prop.window() == 3

    def test_instances_from_terms(self):
        prop = IntervalProperty(name="p")
        prop.commitments.append(Equality(Term("a", 1, instance=0), 5))
        assert prop.instances() == (0,)
        prop.assume_equal("x", 0)
        assert prop.instances() == (0, 1)

    def test_pairwise_equalities(self):
        equalities = pairwise_equalities(["b", "a"], time=2)
        assert [e.left.signal for e in equalities] == ["a", "b"]
        assert all(e.left.time == 2 and e.right.time == 2 for e in equalities)

    def test_summary_mentions_constraints(self):
        prop = IntervalProperty(name="p", description="demo")
        prop.assume_equal("a", 0)
        prop.prove_equal("b", 1)
        text = prop.summary()
        assert "assume" in text and "prove" in text and "demo" in text

    def test_proven_signals(self):
        prop = IntervalProperty(name="p")
        prop.prove_equal("z", 1)
        prop.prove_equal("y", 1)
        assert prop.proven_signals() == ["y", "z"]


class TestSymbolicFrames:
    def test_leaf_vectors_are_lazy_and_stable(self, pipeline_module):
        encoder = TransitionEncoder(pipeline_module)
        frame = encoder.new_frame("f0")
        first = frame.leaf_vector("s1")
        second = frame.leaf_vector("s1")
        assert first == second
        assert len(first) == 8

    def test_bound_leaf_is_used(self, pipeline_module):
        encoder = TransitionEncoder(pipeline_module)
        frame = encoder.new_frame("f0")
        constant = encoder.blaster.constant(0x5A, 8)
        frame.bind_leaf("din", constant)
        assert frame.leaf_vector("din") == constant

    def test_step_frame_registers_come_from_predecessor(self, pipeline_module):
        encoder = TransitionEncoder(pipeline_module)
        frame0 = encoder.new_frame("f0")
        frame0.bind_leaf("din", encoder.blaster.constant(0, 8))
        frame0.bind_leaf("s1", encoder.blaster.constant(0x10, 8))
        frame1 = encoder.step(frame0, "f1")
        # s2 at t+1 = s1 at t + 1 = 0x11 (a constant cone).
        vector = frame1.vector_of("s2")
        from repro.utils.bitvec import from_bits
        values = encoder.aig.evaluate(vector, {})
        assert from_bits(values) == 0x11

    def test_unrolled_frames_count(self, pipeline_module):
        encoder = TransitionEncoder(pipeline_module)
        frames = encoder.unroll("w", 3)
        assert len(frames) == 4

    def test_comb_signal_vector_cached(self, pipeline_module):
        encoder = TransitionEncoder(pipeline_module)
        frame = encoder.new_frame("f0")
        assert frame.vector_of("dout") == frame.vector_of("dout")


class TestIpcEngine:
    def test_structural_proof_for_clean_pipeline(self, pipeline_module):
        engine = IpcEngine(pipeline_module)
        prop = IntervalProperty(name="init")
        prop.assume_equal("din", 0)
        prop.prove_equal("s1", 1)
        result = engine.check(prop)
        assert result.holds and result.structurally_proven

    def test_failure_produces_counterexample(self, trojaned_module):
        engine = IpcEngine(trojaned_module)
        prop = IntervalProperty(name="out")
        prop.assume_equal("din", 0)
        prop.assume_equal("s2", 0)
        prop.prove_equal("dout", 1)
        result = engine.check(prop)
        assert not result.holds
        assert isinstance(result.cex, CounterExample)
        assert "dout" in result.cex.signals_with_difference()
        # The difference must originate from an unconstrained leaf: either the
        # trigger counter or the (unassumed) first pipeline stage.
        trig_differs = result.cex.value("trig", 0, instance=0) != result.cex.value("trig", 0, instance=1)
        s1_differs = result.cex.value("s1", 0, instance=0) != result.cex.value("s1", 0, instance=1)
        assert trig_differs or s1_differs

    def test_assumption_on_culprit_makes_property_hold(self, trojaned_module):
        engine = IpcEngine(trojaned_module)
        prop = IntervalProperty(name="out")
        prop.assume_equal("din", 0)
        prop.assume_equal("s1", 0)
        prop.assume_equal("s2", 0)
        prop.assume_equal("trig", 0)
        prop.prove_equal("dout", 1)
        assert engine.check(prop).holds

    def test_constant_assumption_binds_leaf(self, trojaned_module):
        engine = IpcEngine(trojaned_module)
        prop = IntervalProperty(name="const")
        # Pin the *second* instance's counter away from the trigger value and
        # the first instance's counter to the same value via a term equality.
        prop.assumptions.append(Equality(Term("trig", 0, instance=1), 3))
        prop.assumptions.append(Equality(Term("trig", 0, instance=0), Term("trig", 0, instance=1)))
        prop.assume_equal("din", 0)
        prop.assume_equal("s1", 0)
        prop.assume_equal("s2", 0)
        prop.prove_equal("dout", 1)
        assert engine.check(prop).holds

    def test_single_instance_bounded_property(self, pipeline_module):
        # Single-instance property: with din fixed to zero at t, s1 at t+1 is 0x5a.
        engine = IpcEngine(pipeline_module)
        prop = IntervalProperty(name="value")
        prop.assumptions.append(Equality(Term("din", 0, instance=0), 0))
        prop.commitments.append(Equality(Term("s1", 1, instance=0), 0x5A))
        assert engine.check(prop).holds

    def test_single_instance_property_failure(self, pipeline_module):
        engine = IpcEngine(pipeline_module)
        prop = IntervalProperty(name="value-bad")
        prop.assumptions.append(Equality(Term("din", 0, instance=0), 0))
        prop.commitments.append(Equality(Term("s1", 1, instance=0), 0x00))
        result = engine.check(prop)
        assert not result.holds

    def test_two_cycle_window(self, pipeline_module):
        engine = IpcEngine(pipeline_module)
        prop = IntervalProperty(name="two-cycle")
        prop.assume_equal("din", 0)
        prop.assume_equal("din", 1)
        prop.prove_equal("s1", 1)
        prop.prove_equal("s2", 2)
        result = engine.check(prop)
        assert result.holds

    def test_unknown_signal_raises(self, pipeline_module):
        engine = IpcEngine(pipeline_module)
        prop = IntervalProperty(name="bad")
        prop.assume_equal("din", 0)
        prop.prove_equal("ghost", 1)
        with pytest.raises(PropertyError):
            engine.check(prop)

    def test_persistent_frames_not_constrained_by_earlier_checks(self, trojaned_module):
        engine = IpcEngine(trojaned_module)
        constrained = IntervalProperty(name="pin")
        constrained.assumptions.append(Equality(Term("trig", 0, instance=0), 0))
        constrained.commitments.append(Equality(Term("trig", 1, instance=0), 1))
        assert engine.check(constrained).holds
        # A later check must not inherit the constant pin on instance 0.
        follow_up = IntervalProperty(name="follow")
        follow_up.commitments.append(Equality(Term("trig", 1, instance=0), 1))
        assert not engine.check(follow_up).holds

    def test_counterexample_formatting(self, trojaned_module):
        engine = IpcEngine(trojaned_module)
        prop = IntervalProperty(name="fmt")
        prop.assume_equal("din", 0)
        prop.assume_equal("s2", 0)
        prop.prove_equal("dout", 1)
        result = engine.check(prop)
        text = result.cex.format()
        assert "counterexample" in text and "dout" in text
        assert str(result.cex)
