"""Tests for the CDCL solver internals (repro.sat.solver).

Invariants under test:

* **learned-clause management** — conflict clauses carry LBD tags, the
  learned tier is reduced once it outgrows its budget (glue/binary/locked
  clauses survive), and the deleted/learned counters expose it;
* **stable clause handles** — reducing the database between solve calls
  never corrupts watch lists or reason pointers, so arbitrary
  solve -> reduce -> solve-under-assumptions sequences keep agreeing with
  brute force;
* **conflict-clause minimization** — recursive self-subsumption never
  changes an answer and does not increase the conflict count on the
  pigeonhole family;
* **inprocessing** — vivification shortens/removes original clauses and
  bounded variable elimination resolves out cold Tseitin definitions, with
  model reconstruction covering eliminated variables and any later
  reference to one failing loudly;
* a hypothesis fuzz drives one persistent solver through add/solve/
  assumption/inprocess sequences against a brute-force oracle.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG
from repro.errors import SolverError
from repro.sat import PythonCdclBackend, SatSolver, SolverContext
from repro.sat.solver import GLUE_LBD

from test_sat_backends import brute_force_satisfiable, pigeonhole_clauses


def _random_clauses(rng, num_vars, num_clauses, max_width=3):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


def _satisfies(clauses, model):
    return all(
        any(model.get(abs(l), False) == (l > 0) for l in clause) for clause in clauses
    )


class TestLearnedClauseManagement:
    def test_reduction_deletes_clauses_and_bounds_the_live_tier(self):
        # A tiny budget forces reduction to fire repeatedly on PH(5).
        solver = SatSolver(reduce_base=20, reduce_increment=5)
        for clause in pigeonhole_clauses(5):
            solver.add_clause(clause)
        result = solver.solve()
        assert not result.satisfiable
        assert solver.total_deleted_clauses > 0
        assert result.deleted_clauses == solver.total_deleted_clauses
        assert result.learned_clauses == solver.total_learned_clauses
        # The live tier stays bounded well below everything ever learned.
        assert solver.live_learned_clauses < solver.total_learned_clauses
        assert (
            solver.live_learned_clauses
            <= solver.total_learned_clauses - solver.total_deleted_clauses
        )

    def test_glue_and_binary_clauses_survive_reduction(self):
        solver = SatSolver()
        for clause in pigeonhole_clauses(4):
            solver.add_clause(clause)
        solver.solve()
        protected = [
            clause
            for clause in solver._learned
            if clause.lbd <= GLUE_LBD or len(clause.lits) <= 2
        ]
        solver.reduce_learned()
        assert all(not clause.deleted for clause in protected)

    def test_restart_counter_advances_on_a_hard_instance(self):
        solver = SatSolver()
        for clause in pigeonhole_clauses(5):
            solver.add_clause(clause)
        result = solver.solve()
        # PH(5) needs well over the initial 64-conflict Luby budget.
        assert result.conflicts > 64
        assert result.restarts >= 1
        assert solver.total_restarts == result.restarts

    def test_backend_exposes_the_search_counters(self):
        backend = PythonCdclBackend(reduce_base=20, reduce_increment=5)
        for clause in pigeonhole_clauses(5):
            backend.add_clause(clause)
        assert not backend.solve().satisfiable
        assert backend.total_restarts >= 1
        assert backend.total_learned_clauses > 0
        assert backend.total_deleted_clauses > 0


class TestStableClauseHandles:
    """Database reduction must never invalidate watches or reasons."""

    def test_solve_reduce_solve_under_assumptions(self):
        # Regression for index-coupled clause storage: deleting learned
        # clauses while reason/watch references are index-based corrupts
        # later assumption solves.  Stable handles make the sequence safe.
        solver = SatSolver(reduce_base=10, reduce_increment=2)
        guard = 21
        clauses = [c + [-guard] for c in pigeonhole_clauses(4)]
        for clause in clauses:
            solver.add_clause(clause)
        assert not solver.solve(assumptions=[guard]).satisfiable
        deleted = solver.reduce_learned()
        assert deleted >= 0  # explicit mid-sequence reduction
        # The guarded formula stays UNSAT under the guard and SAT without.
        assert not solver.solve(assumptions=[guard]).satisfiable
        assert solver.solve(assumptions=[-guard]).satisfiable
        assert solver.solve().satisfiable

    def test_randomized_solve_reduce_solve_agrees_with_brute_force(self):
        rng = random.Random(0x5EED)
        for _ in range(25):
            num_vars = rng.randint(3, 6)
            solver = SatSolver(reduce_base=5, reduce_increment=1)
            clauses = _random_clauses(rng, num_vars, rng.randint(4, 18))
            for clause in clauses:
                solver.add_clause(clause)
            for _ in range(3):
                expected = brute_force_satisfiable(num_vars, clauses)
                result = solver.solve()
                assert result.satisfiable == expected
                if expected:
                    assert _satisfies(clauses, result.model)
                solver.reduce_learned()
                assumption = rng.randint(1, num_vars) * rng.choice((1, -1))
                expected = brute_force_satisfiable(num_vars, clauses, [assumption])
                assert solver.solve(assumptions=[assumption]).satisfiable == expected


class TestConflictClauseMinimization:
    def test_minimization_never_increases_pigeonhole_conflicts(self):
        for holes in (4, 5):
            clauses = pigeonhole_clauses(holes)
            minimized = SatSolver(minimize=True)
            plain = SatSolver(minimize=False)
            for clause in clauses:
                minimized.add_clause(clause)
                plain.add_clause(clause)
            result_min = minimized.solve()
            result_plain = plain.solve()
            assert not result_min.satisfiable and not result_plain.satisfiable
            assert result_min.conflicts <= result_plain.conflicts

    def test_both_settings_agree_with_brute_force(self):
        rng = random.Random(0xBEEF)
        for _ in range(25):
            num_vars = rng.randint(3, 6)
            clauses = _random_clauses(rng, num_vars, rng.randint(4, 18))
            expected = brute_force_satisfiable(num_vars, clauses)
            for minimize in (True, False):
                solver = SatSolver(minimize=minimize)
                for clause in clauses:
                    solver.add_clause(clause)
                assert solver.solve().satisfiable == expected


class TestInprocessing:
    def test_vivification_shortens_an_implied_clause(self):
        # With 1 <-> 2, probing either literal of [1, 2] falsifies the
        # other, so vivification shrinks [1, 2] to a unit (symmetric in the
        # stored literal order).
        solver = SatSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([1, -2])
        solver.add_clause([1, 2])
        stats = solver.inprocess()
        assert stats["vivify_checked"] > 0
        assert stats["vivified"] >= 1
        result = solver.solve()
        assert result.satisfiable
        assert result.model[1] and result.model[2]
        assert not solver.solve(assumptions=[-1]).satisfiable

    def test_elimination_resolves_out_a_cold_definition(self):
        # v <-> (a AND b), with v referenced nowhere else: both resolution
        # pairs are tautological, so eliminating v just drops 3 clauses.
        solver = SatSolver()
        a, b, v = 1, 2, 3
        solver.add_clause([-v, a])
        solver.add_clause([-v, b])
        solver.add_clause([v, -a, -b])
        solver.add_clause([a])  # keep the instance non-trivial
        stats = solver.inprocess(candidate_vars=[v])
        assert stats["eliminated"] == [v]
        assert stats["resolvents"] == 0
        assert solver.is_eliminated(v)
        result = solver.solve()
        assert result.satisfiable
        # Model reconstruction restores a value for v that satisfies the
        # original definition clauses.
        assert result.model[v] == (result.model[a] and result.model[b])

    def test_eliminated_variables_must_not_be_referenced_again(self):
        solver = SatSolver()
        solver.add_clause([-3, 1])
        solver.add_clause([-3, 2])
        solver.add_clause([3, -1, -2])
        assert solver.inprocess(candidate_vars=[3])["eliminated"] == [3]
        with pytest.raises(SolverError, match="eliminated"):
            solver.solve(assumptions=[3])
        with pytest.raises(SolverError, match="eliminated"):
            solver.add_clause([3, 1])

    def test_context_inprocessing_invalidates_encodings_and_keeps_verdicts(self):
        aig = AIG()
        literals = [aig.add_input(f"i{k}") for k in range(4)]
        left = aig.and_(literals[0], literals[1])
        right = aig.and_(literals[2], literals[3])
        root = aig.and_(left, right)
        context = SolverContext(aig, backend="python")
        goal = context.literal_of(root)
        assert context.solve(assumptions=[goal]).satisfiable
        stats = context.inprocess()
        # Either way the context stays sound; when variables were
        # eliminated, their builder cache entries must be gone too.
        eliminated = stats["eliminated"]
        if eliminated:
            assert stats["invalidated_nodes"] >= len(eliminated)
        # Re-encoding the same cone (fresh variables where invalidated)
        # still proves both polarities correctly.
        goal = context.literal_of(root)
        assert context.solve(assumptions=[goal]).satisfiable
        assert context.solve(assumptions=[-goal]).satisfiable
        inputs = [context.literal_of(literal) for literal in literals]
        assert not context.solve(assumptions=[goal, -inputs[0]]).satisfiable

    def test_default_backend_inprocess_is_a_noop(self):
        from repro.sat.backend import SatBackend

        class Minimal(SatBackend):
            def add_clause(self, literals):
                pass

            def ensure_vars(self, count):
                pass

            def solve(self, assumptions=None, conflict_limit=None):
                raise NotImplementedError

            @property
            def num_vars(self):
                return 0

            @property
            def num_clauses(self):
                return 0

            @property
            def total_conflicts(self):
                return 0

            @property
            def solve_calls(self):
                return 0

        stats = Minimal().inprocess(candidate_vars=[1, 2])
        assert stats["eliminated"] == []
        assert stats["vivified"] == 0


class TestInprocessEquivalence:
    """Inprocessing must never change a verdict, a witness, or a report's
    semantic content — only the performance telemetry."""

    @pytest.mark.parametrize(
        "bench_name", ["RS232-T2400", "RS232-HT-FREE", "RS232-SEQ-T3000"]
    )
    def test_no_inprocess_and_default_reports_are_identical(self, bench_name):
        from repro.exec import normalized_report_dict
        from test_preprocess import _audit

        default = _audit(bench_name)
        plain = _audit(bench_name, inprocess=False)
        assert normalized_report_dict(default.to_dict()) == (
            normalized_report_dict(plain.to_dict())
        )
        if default.counterexample is not None:
            assert (
                default.counterexample.values == plain.counterexample.values
            ), "counterexample must be byte-identical across inprocess modes"

    def test_parallel_no_inprocess_still_identical(self):
        from repro.exec import normalized_report_dict
        from test_preprocess import _audit

        serial = _audit("RS232-T2400")
        parallel = _audit("RS232-T2400", inprocess=False, jobs=2)
        assert normalized_report_dict(serial.to_dict()) == (
            normalized_report_dict(parallel.to_dict())
        )


class TestSearchCounterTelemetry:
    def test_counters_thread_through_to_the_report(self):
        from test_preprocess import _audit

        # Without preprocessing the miter goes straight to CDCL, so the
        # run's solver block must show genuine search work.
        report = _audit("RS232-T2400", simplify=False)
        assert report.solver_calls > 0
        assert report.solver_conflicts > 0
        assert report.solver_learned_clauses > 0
        data = report.to_dict()["solver"]
        assert data["learned_clauses"] == report.solver_learned_clauses
        assert data["restarts"] == report.solver_restarts
        assert data["deleted_clauses"] == report.solver_deleted_clauses
        stats = report.solver_stats()
        assert stats["learned_clauses"] == report.solver_learned_clauses
        assert f"{report.solver_learned_clauses} learned" in report.summary()

    def test_old_report_dicts_default_the_new_counters(self):
        from repro.core.report import DetectionReport
        from test_preprocess import _audit

        data = _audit("RS232-HT-FREE").to_dict()
        # Simulate a v4 report: no search counters in the solver block.
        data["schema_version"] = 4
        for key in ("restarts", "learned_clauses", "deleted_clauses"):
            del data["solver"][key]
        rebuilt = DetectionReport.from_dict(data)
        assert rebuilt.solver_restarts == 0
        assert rebuilt.solver_learned_clauses == 0
        assert rebuilt.solver_deleted_clauses == 0


_clause_strategy = st.lists(
    st.integers(min_value=1, max_value=5).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    min_size=1,
    max_size=3,
)


class TestSolverFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        clauses=st.lists(_clause_strategy, min_size=1, max_size=14),
        extra=st.lists(_clause_strategy, min_size=0, max_size=6),
        assumption_vars=st.lists(
            st.integers(min_value=1, max_value=5), min_size=0, max_size=2
        ),
        inprocess=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_persistent_solver_agrees_with_brute_force(
        self, clauses, extra, assumption_vars, inprocess, seed
    ):
        """One persistent solver through add/solve/inprocess/assume rounds."""
        rng = random.Random(seed)
        num_vars = 5
        solver = SatSolver(reduce_base=5, reduce_increment=1)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().satisfiable == brute_force_satisfiable(num_vars, clauses)
        if inprocess:
            solver.inprocess(candidate_vars=[rng.randint(1, num_vars)])
        # Assumptions may only name variables inprocessing did not remove.
        assumptions = [
            variable * rng.choice((1, -1))
            for variable in assumption_vars
            if not solver.is_eliminated(variable)
        ]
        assert solver.solve(assumptions=assumptions).satisfiable == (
            brute_force_satisfiable(num_vars, clauses, assumptions)
        )
        # Adding clauses after inprocessing keeps agreeing, as long as the
        # new clauses avoid eliminated variables.
        added = [
            clause
            for clause in extra
            if not any(solver.is_eliminated(abs(l)) for l in clause)
        ]
        for clause in added:
            solver.add_clause(clause)
        combined = clauses + added
        result = solver.solve()
        assert result.satisfiable == brute_force_satisfiable(num_vars, combined)
        if result.satisfiable:
            assert _satisfies(combined, result.model)
