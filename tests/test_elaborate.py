"""Tests for elaboration: AST -> flat RTL IR."""

import pytest

from repro.errors import ElaborationError, UnsupportedFeatureError
from repro.rtl import elaborate_source, exprs
from repro.sim import Simulator


class TestPortsAndSignals:
    def test_port_widths(self, counter_module):
        assert counter_module.inputs == {"clk": 1, "rst": 1, "en": 1}
        assert counter_module.outputs == {"count": 16, "wrapped": 1}

    def test_parameter_override_through_instance(self, counter_module):
        assert counter_module.width_of("u_cnt.cnt") == 16

    def test_clock_traced_through_hierarchy(self, counter_module):
        assert counter_module.clocks == {"clk"}

    def test_data_inputs_exclude_clock(self, counter_module):
        assert set(counter_module.data_inputs()) == {"rst", "en"}

    def test_state_and_output_signals(self, pipeline_module):
        assert set(pipeline_module.state_and_output_signals()) == {"s1", "s2", "dout"}

    def test_validate_passes_for_elaborated_module(self, pipeline_module):
        pipeline_module.validate()

    def test_unknown_signal_width_raises(self, pipeline_module):
        with pytest.raises(ElaborationError):
            pipeline_module.width_of("missing")

    def test_unknown_top_raises(self):
        with pytest.raises(ElaborationError):
            elaborate_source("module m; endmodule", "other")

    def test_default_parameter_value_used(self):
        module = elaborate_source(
            "module m #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);"
            " assign y = a; endmodule",
            "m",
        )
        assert module.inputs["a"] == 4

    def test_parameter_override_at_top(self):
        module = elaborate_source(
            "module m #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);"
            " assign y = a; endmodule",
            "m",
            parameters={"W": 12},
        )
        assert module.inputs["a"] == 12

    def test_unknown_parameter_override_raises(self):
        with pytest.raises(ElaborationError):
            elaborate_source("module m(input a); endmodule", "m", parameters={"X": 1})


class TestContinuousAssigns:
    def test_simple_assign(self):
        module = elaborate_source(
            "module m(input [3:0] a, output [3:0] y); assign y = ~a; endmodule", "m"
        )
        assert isinstance(module.comb["y"], exprs.Unop)

    def test_partial_assigns_merge(self):
        module = elaborate_source(
            "module m(input [3:0] a, input [3:0] b, output [7:0] y);"
            " assign y[3:0] = a; assign y[7:4] = b; endmodule",
            "m",
        )
        simulator = Simulator(module)
        values = simulator.step({"a": 0x3, "b": 0xC})
        assert values["y"] == 0xC3

    def test_partial_assign_gap_filled_with_zero(self):
        module = elaborate_source(
            "module m(input [3:0] a, output [11:0] y); assign y[3:0] = a; endmodule", "m"
        )
        values = Simulator(module).step({"a": 0xF})
        assert values["y"] == 0x00F

    def test_overlapping_drivers_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_source(
                "module m(input a, output y); assign y = a; assign y = ~a; endmodule", "m"
            )

    def test_assign_to_concat_lvalue(self):
        module = elaborate_source(
            "module m(input [7:0] a, output [3:0] hi, output [3:0] lo);"
            " assign {hi, lo} = a; endmodule",
            "m",
        )
        values = Simulator(module).step({"a": 0xA5})
        assert values["hi"] == 0xA and values["lo"] == 0x5

    def test_undriven_used_signal_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_source(
                "module m(output y); wire ghost; assign y = ghost; endmodule", "m"
            )

    def test_combinational_loop_rejected_by_analysis(self):
        from repro.rtl.netlist import DependencyGraph

        module = elaborate_source(
            "module m(output y); wire a; wire b; assign a = ~b; assign b = ~a;"
            " assign y = a; endmodule",
            "m",
        )
        with pytest.raises(ElaborationError):
            DependencyGraph(module)


class TestAlwaysBlocks:
    def test_nonblocking_assignment_becomes_register(self, pipeline_module):
        assert set(pipeline_module.registers) == {"s1", "s2"}

    def test_if_without_else_keeps_value(self):
        module = elaborate_source(
            "module m(input clk, input en, input [3:0] d, output [3:0] q);"
            " reg [3:0] r; always @(posedge clk) if (en) r <= d;"
            " assign q = r; endmodule",
            "m",
        )
        simulator = Simulator(module)
        simulator.step({"en": 1, "d": 7})
        simulator.step({"en": 0, "d": 3})
        assert simulator.state()["r"] == 7

    def test_case_statement_semantics(self):
        module = elaborate_source(
            "module m(input clk, input [1:0] s, output [7:0] q); reg [7:0] r;"
            " always @(posedge clk) case (s) 2'd0: r <= 8'h11; 2'd1: r <= 8'h22;"
            " default: r <= 8'hff; endcase assign q = r; endmodule",
            "m",
        )
        simulator = Simulator(module)
        simulator.step({"s": 1})
        assert simulator.state()["r"] == 0x22
        simulator.step({"s": 3})
        assert simulator.state()["r"] == 0xFF

    def test_blocking_assignment_visible_to_later_reads(self):
        module = elaborate_source(
            "module m(input a, input b, output reg y); always @(*) begin"
            " y = a; y = y & b; end endmodule",
            "m",
        )
        values = Simulator(module).step({"a": 1, "b": 0})
        assert values["y"] == 0

    def test_combinational_latch_detected(self):
        with pytest.raises(ElaborationError):
            elaborate_source(
                "module m(input en, input d, output reg q);"
                " always @(*) if (en) q = d; endmodule",
                "m",
            )

    def test_latch_avoided_by_default_assignment(self):
        module = elaborate_source(
            "module m(input en, input d, output reg q);"
            " always @(*) begin q = 1'b0; if (en) q = d; end endmodule",
            "m",
        )
        assert Simulator(module).step({"en": 0, "d": 1})["q"] == 0

    def test_partial_bit_assignment_in_always(self):
        module = elaborate_source(
            "module m(input clk, input d, output [3:0] q); reg [3:0] r;"
            " always @(posedge clk) r[2] <= d; assign q = r; endmodule",
            "m",
        )
        simulator = Simulator(module)
        simulator.step({"d": 1})
        assert simulator.state()["r"] == 0b0100

    def test_reg_assigned_in_two_always_blocks_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_source(
                "module m(input clk, input d); reg q;"
                " always @(posedge clk) q <= d; always @(posedge clk) q <= ~d; endmodule",
                "m",
            )

    def test_signal_not_declared_reg_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_source(
                "module m(input clk, input d, output q); wire q2;"
                " always @(posedge clk) q2 <= d; assign q = q2; endmodule",
                "m",
            )

    def test_async_reset_value_extracted_for_simulator(self):
        module = elaborate_source(
            "module m(input clk, input rst, input [3:0] d, output [3:0] q); reg [3:0] r;"
            " always @(posedge clk or posedge rst) if (rst) r <= 4'h9; else r <= d;"
            " assign q = r; endmodule",
            "m",
        )
        assert module.registers["r"].reset_value == 9
        assert "rst" in module.resets

    def test_rom_inference_from_constant_case(self):
        module = elaborate_source(
            "module m(input [1:0] a, output reg [7:0] q);"
            " always @(*) case (a) 2'd0: q = 8'h10; 2'd1: q = 8'h20; 2'd2: q = 8'h30;"
            " default: q = 8'h40; endcase endmodule",
            "m",
        )
        driver = module.comb["q"]
        assert isinstance(driver, exprs.Lut)
        assert driver.table == (0x10, 0x20, 0x30, 0x40)

    def test_non_constant_case_not_rom_inferred(self):
        module = elaborate_source(
            "module m(input [1:0] a, input [7:0] d, output reg [7:0] q);"
            " always @(*) case (a) 2'd0: q = d; default: q = 8'h40; endcase endmodule",
            "m",
        )
        assert not isinstance(module.comb["q"], exprs.Lut)


class TestHierarchy:
    def test_child_signals_are_prefixed(self, counter_module):
        assert "u_cnt.cnt" in counter_module.signals

    def test_unconnected_input_tied_to_zero(self):
        source = """
module child(input [3:0] a, output [3:0] y); assign y = a + 4'h1; endmodule
module top(output [3:0] y); child u (.y(y), .a()); endmodule
"""
        values = Simulator(elaborate_source(source, "top")).step({})
        assert values["y"] == 1

    def test_output_connected_to_slice(self):
        source = """
module child(output [3:0] y); assign y = 4'hA; endmodule
module top(output [7:0] y); child u (.y(y[7:4])); assign y[3:0] = 4'h5; endmodule
"""
        values = Simulator(elaborate_source(source, "top")).step({})
        assert values["y"] == 0xA5

    def test_positional_connections(self):
        source = """
module adder(input [3:0] a, input [3:0] b, output [3:0] s); assign s = a + b; endmodule
module top(input [3:0] x, input [3:0] y, output [3:0] s); adder u (x, y, s); endmodule
"""
        values = Simulator(elaborate_source(source, "top")).step({"x": 2, "y": 3})
        assert values["s"] == 5

    def test_unknown_child_module_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_source("module top; ghost u (); endmodule", "top")

    def test_unknown_child_port_rejected(self):
        source = """
module child(input a); endmodule
module top(input x); child u (.nope(x)); endmodule
"""
        with pytest.raises(ElaborationError):
            elaborate_source(source, "top")

    def test_nested_hierarchy_flattens(self):
        source = """
module leaf(input [3:0] a, output [3:0] y); assign y = ~a; endmodule
module mid(input [3:0] a, output [3:0] y); leaf u_leaf (.a(a), .y(y)); endmodule
module top(input [3:0] a, output [3:0] y); mid u_mid (.a(a), .y(y)); endmodule
"""
        module = elaborate_source(source, "top")
        assert "u_mid.u_leaf.y" in module.signals
        assert Simulator(module).step({"a": 0b0011})["y"] == 0b1100

    def test_parameter_propagates_to_grandchild(self):
        source = """
module leaf #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y); assign y = a; endmodule
module top(input [7:0] a, output [7:0] y); leaf #(.W(8)) u (.a(a), .y(y)); endmodule
"""
        module = elaborate_source(source, "top")
        assert module.width_of("u.a") == 8

    def test_inout_port_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            elaborate_source("module m(inout a); endmodule", "m")
