"""Tests for cube-and-conquer: splitting hard checks into cube tasks.

The contract under test: when a class's first SAT call blows its conflict
budget, the check is partitioned into ``2^split_depth`` covering cubes that
are settled as independent tasks and reduced back into one class result —
and nothing about the *semantic* report (verdict, outcomes, witnesses,
assumption counts) may depend on whether, or over how many workers, the
split happened.  Cube planning is deterministic and position-seeded, so
per-cube verdicts are cacheable and an interrupted hard proof resumes from
its settled cubes with zero repeated solver work.

The end-to-end sections drive ``benchmarks/cube_widget.v``: a 5-stage
register pipeline feeding a multiplier-commutativity identity whose class-1
obligation needs ~2000 conflicts monolithically — the one committed design
known to actually split (bundled Trust-Hub benchmarks all settle their
classes structurally or within a handful of conflicts).
"""

import json
import os

import pytest

from repro.api import Design, DetectionConfig, DetectionSession
from repro.core.events import ClassSplit
from repro.errors import ConflictLimitExceeded, ReproError, SolverError
from repro.exec import (
    CubeVerdict,
    SplitResult,
    cube_cache_key,
    cube_verdict_from_record,
    cube_verdict_to_record,
    normalized_report_dict,
    split_cache_key,
    split_result_from_record,
    split_result_to_record,
    task_entry_from_record,
    task_entry_to_record,
)
from repro.sat.cubes import enumerate_cubes, select_split_bits
from repro.sat.solver import SatSolver

WIDGET_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "cube_widget.v",
)

#: Below the widget's ~2000-conflict class-1 obligation, far above every
#: other class (which settle structurally or with zero conflicts).
SPLIT_BUDGET = dict(split=True, split_conflicts=200, split_depth=2)


# ---------------------------------------------------------------------- #
# Cube enumeration / selection units
# ---------------------------------------------------------------------- #


class TestEnumerateCubes:
    def test_cubes_cover_the_assignment_space_exactly(self):
        bits = ["x", "y", "z"]
        cubes = enumerate_cubes(bits)
        assert len(cubes) == 8
        assignments = {tuple(value for _bit, value in cube) for cube in cubes}
        assert assignments == {
            (a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)
        }

    def test_enumeration_order_is_msb_first(self):
        assert enumerate_cubes(["a", "b"]) == [
            (("a", 0), ("b", 0)),
            (("a", 0), ("b", 1)),
            (("a", 1), ("b", 0)),
            (("a", 1), ("b", 1)),
        ]

    def test_empty_bit_list_is_the_trivial_cover(self):
        # One empty cube: the degenerate split that covers everything.
        assert enumerate_cubes([]) == [()]


class TestSelectSplitBits:
    def _cone(self):
        # A small AIG whose root cone references inputs a and b, with
        # input c outside the cone entirely.  add_input/and_ return
        # literals; select_split_bits candidates are *nodes*.
        from repro.aig.aig import AIG

        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        left = aig.and_(a, b)
        root = aig.and_(left, aig.not_(a))
        nodes = tuple(literal >> 1 for literal in (a, b, c))
        return aig, root, nodes

    def test_selection_is_deterministic_and_cone_restricted(self):
        aig, root, (a, b, c) = self._cone()
        candidates = [(a, "k/a"), (b, "k/b"), (c, "k/c")]
        first = select_split_bits(aig, [root], candidates, depth=2)
        second = select_split_bits(aig, [root], candidates, depth=2)
        assert first == second
        assert c not in first  # outside the cone
        assert set(first) <= {a, b}

    def test_depth_zero_and_no_candidates(self):
        aig, root, (a, _b, _c) = self._cone()
        assert select_split_bits(aig, [root], [(a, "k")], depth=0) == []
        assert select_split_bits(aig, [root], [], depth=2) == []

    def test_returns_fewer_bits_than_depth_when_cone_is_small(self):
        aig, root, (a, b, _c) = self._cone()
        candidates = [(a, "k/a"), (b, "k/b")]
        chosen = select_split_bits(aig, [root], candidates, depth=5)
        assert sorted(chosen) == sorted([a, b])


# ---------------------------------------------------------------------- #
# Conflict-budgeted solving
# ---------------------------------------------------------------------- #


def _pigeonhole_clauses(holes):
    """PHP(holes+1, holes): UNSAT and expensive for resolution."""
    pigeons = holes + 1

    def var(pigeon, hole):
        return pigeon * holes + hole + 1

    clauses = [
        [var(pigeon, hole) for hole in range(holes)] for pigeon in range(pigeons)
    ]
    for hole in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, hole), -var(p2, hole)])
    return clauses


class TestConflictLimit:
    def test_limit_raises_and_is_a_solver_error(self):
        solver = SatSolver()
        for clause in _pigeonhole_clauses(5):
            solver.add_clause(clause)
        with pytest.raises(ConflictLimitExceeded):
            solver.solve(conflict_limit=3)
        assert issubclass(ConflictLimitExceeded, SolverError)

    def test_solver_stays_usable_after_an_aborted_call(self):
        solver = SatSolver()
        for clause in _pigeonhole_clauses(4):
            solver.add_clause(clause)
        with pytest.raises(ConflictLimitExceeded):
            solver.solve(conflict_limit=2)
        # The aborted call backtracked to level 0: the same persistent
        # context finishes the proof (keeping its learned clauses).
        assert not solver.solve().satisfiable

    def test_unlimited_call_never_raises(self):
        solver = SatSolver()
        for clause in _pigeonhole_clauses(3):
            solver.add_clause(clause)
        assert not solver.solve().satisfiable


# ---------------------------------------------------------------------- #
# Record round-trips (queue transport and cache persistence)
# ---------------------------------------------------------------------- #

_CUBE = (
    (0, 0, "r5", 3, 1),
    (1, 0, "r5", 0, 0),
)


class TestSplitRecords:
    def _split(self):
        return SplitResult(
            design="widget",
            index=1,
            kind="fanout",
            property_name="CC1 fanout",
            commitments=12,
            cubes=[_CUBE, ((0, 0, "r5", 1, 0),)],
            outcome_template={"index": 1, "kind": "fanout", "holds": True},
        )

    def test_split_result_round_trips_through_json(self):
        split = self._split()
        record = json.loads(json.dumps(split_result_to_record(split)))
        restored = split_result_from_record("widget", record)
        assert restored == split

    def test_cube_verdict_round_trips_through_json(self):
        verdict = CubeVerdict(design="widget", index=1, cube=_CUBE, sat=False)
        record = json.loads(json.dumps(cube_verdict_to_record(verdict)))
        restored = cube_verdict_from_record("widget", record)
        assert restored == verdict
        cached = cube_verdict_from_record("widget", record, from_cache=True)
        assert cached.from_cache and cached.cube == verdict.cube

    def test_task_entry_transport_tags_each_union_member(self):
        split = self._split()
        verdict = CubeVerdict(design="widget", index=1, cube=_CUBE, sat=True)
        assert task_entry_to_record(split)["entry"] == "split"
        assert task_entry_to_record(verdict)["entry"] == "cube"
        for entry in (split, verdict):
            wire = json.loads(json.dumps(task_entry_to_record(entry)))
            assert task_entry_from_record("widget", wire) == entry

    def test_unknown_entry_tag_is_rejected(self):
        with pytest.raises(ReproError, match="unknown task entry tag"):
            task_entry_from_record("widget", {"entry": "shard"})

    def test_malformed_records_raise_repro_error(self):
        with pytest.raises(ReproError):
            split_result_from_record("widget", {"index": 1})
        with pytest.raises(ReproError):
            split_result_from_record(
                "widget",
                {**split_result_to_record(self._split()), "cubes": []},
            )
        with pytest.raises(ReproError, match="must be a bool"):
            cube_verdict_from_record(
                "widget", {"index": 1, "cube": [], "sat": "yes"}
            )

    def test_cache_keys_separate_splits_cubes_and_classes(self):
        split_key = split_cache_key("m", "c", 1)
        cube_keys = {
            cube_cache_key(
                "m", "c", 1, tuple((*bit, value) for bit, value in cube)
            )
            for cube in enumerate_cubes([(0, 0, "r5", 3)])
        }
        assert len(cube_keys) == 2
        assert split_key not in cube_keys
        assert split_cache_key("m", "c", 2) != split_key


# ---------------------------------------------------------------------- #
# End to end on the committed widget (the design that actually splits)
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def widget_module():
    return Design.from_file(WIDGET_PATH, top="cube_widget").module


@pytest.fixture(scope="module")
def monolithic_report(widget_module):
    return DetectionSession(
        widget_module, config=DetectionConfig(split=False)
    ).run()


@pytest.fixture(scope="module")
def split_run(widget_module, tmp_path_factory):
    """One split run with a cache directory, plus its captured events."""
    cache_dir = tmp_path_factory.mktemp("cube-cache")
    session = DetectionSession(
        widget_module,
        config=DetectionConfig(cache_dir=str(cache_dir), **SPLIT_BUDGET),
    )
    events = []
    session.subscribe(events.append, ClassSplit)
    report = session.run()
    return report, events, cache_dir


class TestSplitEndToEnd:
    def test_the_widget_actually_splits(self, split_run):
        report, events, _cache_dir = split_run
        split_outcomes = [o for o in report.outcomes if o.cubes > 1]
        assert split_outcomes, "cube_widget.v no longer trips the budget"
        assert split_outcomes[0].cubes == 4  # 2^split_depth
        assert split_outcomes[0].cubes_cached == 0  # cold run

    def test_split_emits_a_class_split_event(self, split_run):
        _report, events, _cache_dir = split_run
        assert len(events) == 1
        assert events[0].cubes == 4 and events[0].cubes_cached == 0

    def test_split_and_monolithic_reports_are_byte_identical(
        self, monolithic_report, split_run
    ):
        report, _events, _cache_dir = split_run
        assert report.is_secure and monolithic_report.is_secure
        assert json.dumps(
            normalized_report_dict(report.to_dict()), sort_keys=True
        ) == json.dumps(
            normalized_report_dict(monolithic_report.to_dict()), sort_keys=True
        )

    def test_interrupted_run_resumes_from_cube_verdicts(
        self, widget_module, split_run
    ):
        report, _events, cache_dir = split_run
        split_index = next(o.index for o in report.outcomes if o.cubes > 1)
        # Simulate dying after the cubes settled but before the reduced
        # class record landed: drop exactly the settled record of the
        # split class, keep the split plan and the per-cube verdicts.
        deleted = 0
        for path in cache_dir.rglob("*.json"):
            record = json.loads(path.read_text())["record"]
            if (
                record.get("entry", "class") == "class"
                and record.get("index") == split_index
                and "terminal" in record
            ):
                path.unlink()
                deleted += 1
        assert deleted == 1
        resumed = DetectionSession(
            widget_module,
            config=DetectionConfig(cache_dir=str(cache_dir), **SPLIT_BUDGET),
        ).run()
        outcome = next(o for o in resumed.outcomes if o.index == split_index)
        # Every cube replayed from cache: no repeated solver work at all.
        assert outcome.cubes == 4 and outcome.cubes_cached == 4
        assert resumed.solver_calls == 0
        assert normalized_report_dict(resumed.to_dict()) == normalized_report_dict(
            report.to_dict()
        )
