"""Integration test: reproduce the detection outcomes of the paper's Table I.

For every regenerated Trust-Hub-style benchmark the detection flow must reach
the same conclusion the paper reports: which property (or the coverage check)
exposes the Trojan, and that the Trojan-free designs verify as secure.
"""

import pytest

from repro.core import DetectionConfig, Waiver, detect_trojans
from repro.trusthub import design_names, load_design, load_module


def _config(design, with_waivers=True):
    waivers = []
    if with_waivers:
        waivers = [Waiver(signal, "legitimate control state") for signal in design.recommended_waivers]
    return DetectionConfig(inputs=list(design.data_inputs), waivers=waivers)


@pytest.mark.parametrize("name", design_names(family="AES", with_trojan=True))
def test_aes_trojan_detected_by_expected_property(name):
    design = load_design(name)
    report = detect_trojans(load_module(name), _config(design))
    assert report.trojan_detected, f"{name}: Trojan not detected"
    assert report.detected_by == design.expected_detection, (
        f"{name}: expected {design.expected_detection}, got {report.detected_by}"
    )


def test_aes_ht_free_design_is_secure():
    design = load_design("AES-HT-FREE")
    report = detect_trojans(load_module("AES-HT-FREE"), _config(design))
    assert report.is_secure
    assert report.coverage is not None and report.coverage.complete
    # The paper reports no spurious counterexamples for the HT-free AES runs.
    assert report.spurious_resolved == 0


@pytest.mark.parametrize("name", design_names(family="BasicRSA", with_trojan=True))
def test_rsa_trojans_detected(name):
    design = load_design(name)
    report = detect_trojans(load_module(name), _config(design))
    assert report.trojan_detected
    assert report.detected_by == design.expected_detection


def test_rsa_ht_free_needs_exactly_the_two_documented_waivers():
    design = load_design("BasicRSA-HT-FREE")
    module = load_module("BasicRSA-HT-FREE")
    # Without waivers the two sticky handshake flags produce counterexamples
    # (the paper's "2 spurious CEXs" on the RSA designs).
    raw = detect_trojans(module, _config(design, with_waivers=False))
    assert not raw.is_secure
    causes = {cause.signal for cause in raw.diagnosis.causes}
    assert causes <= set(design.recommended_waivers)
    # With the waivers the design verifies as secure.
    waived = detect_trojans(module, _config(design))
    assert waived.is_secure
    assert len(design.recommended_waivers) == 2


def test_rs232_case_study():
    design = load_design("RS232-T2400")
    report = detect_trojans(load_module("RS232-T2400"), _config(design))
    assert report.trojan_detected
    # The paper reports detection by a failed fanout property (not the init
    # property and not the coverage check).
    assert report.detected_by.startswith("fanout property")


def test_rs232_ht_free_secure_with_waivers():
    design = load_design("RS232-HT-FREE")
    module = load_module("RS232-HT-FREE")
    raw = detect_trojans(module, _config(design, with_waivers=False))
    assert not raw.is_secure  # legitimate cross-frame state -> spurious CEXs
    waived = detect_trojans(module, _config(design))
    assert waived.is_secure


def test_detection_does_not_need_golden_model_or_waiver_for_aes():
    """The AES detections run with an empty waiver list — fully golden-free."""
    design = load_design("AES-T1400")
    report = detect_trojans(load_module("AES-T1400"), DetectionConfig(inputs=list(design.data_inputs)))
    assert report.detected_by == "init property"


def test_proof_effort_stays_small():
    """Per-property proof runtimes stay in the order reported by the paper."""
    design = load_design("AES-HT-FREE")
    report = detect_trojans(load_module("AES-HT-FREE"), _config(design))
    assert report.max_property_runtime() < 5.0
    assert report.total_runtime_seconds < 60.0
