"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.sat.solver import SatSolver, _luby


def brute_force_satisfiable(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any((assignment[abs(l)] if l > 0 else not assignment[abs(l)]) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def check_model(clauses, model):
    for clause in clauses:
        if not any((model[abs(l)] if l > 0 else not model[abs(l)]) for l in clause):
            return False
    return True


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve().satisfiable

    def test_single_unit_clause(self):
        solver = SatSolver()
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable and result.value(1) is True

    def test_conflicting_units_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve().satisfiable

    def test_empty_clause_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.solve().satisfiable

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            SatSolver().add_clause([0])

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(3) is True

    def test_xor_constraint_model(self):
        # x1 XOR x2 encoded as CNF, plus x1 = True forces x2 = False.
        clauses = [[1, 2], [-1, -2], [1]]
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.satisfiable
        assert check_model(clauses, result.model)
        assert result.value(2) is False

    def test_unsat_core_style_problem(self):
        # (a or b) and (a or -b) and (-a or b) and (-a or -b) is UNSAT.
        solver = SatSolver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        assert not solver.solve().satisfiable

    def test_num_vars_and_clauses_tracking(self):
        solver = SatSolver()
        solver.add_clause([1, -3])
        assert solver.num_vars == 3
        assert solver.num_clauses == 1


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """holes+1 pigeons into `holes` holes — classic small UNSAT family."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        solver = SatSolver()
        for clause in self._pigeonhole(holes):
            solver.add_clause(clause)
        assert not solver.solve().satisfiable


class TestAssumptions:
    def _solver(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])   # 1 -> 2
        solver.add_clause([-2, -3])  # 2 -> not 3
        return solver

    def test_sat_under_assumptions(self):
        result = self._solver().solve(assumptions=[1])
        assert result.satisfiable
        assert result.value(2) is True and result.value(3) is False

    def test_unsat_under_assumptions(self):
        assert not self._solver().solve(assumptions=[1, 3]).satisfiable

    def test_solver_reusable_after_assumption_unsat(self):
        solver = self._solver()
        assert not solver.solve(assumptions=[1, 3]).satisfiable
        assert solver.solve(assumptions=[1]).satisfiable
        assert solver.solve().satisfiable

    def test_contradicting_assumption_with_unit(self):
        solver = SatSolver()
        solver.add_clause([5])
        assert not solver.solve(assumptions=[-5]).satisfiable


class TestRandomised:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_3sat_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(3, 24)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
        if result.satisfiable:
            assert check_model(clauses, result.model)

    def test_larger_random_satisfiable_instance(self):
        rng = random.Random(99)
        num_vars = 60
        clauses = []
        planted = {v: rng.random() < 0.5 for v in range(1, num_vars + 1)}
        for _ in range(250):
            variables = rng.sample(range(1, num_vars + 1), 3)
            clause = [v if rng.random() < 0.5 else -v for v in variables]
            # Ensure the planted assignment satisfies the clause.
            if not any((planted[abs(l)] if l > 0 else not planted[abs(l)]) for l in clause):
                flip = rng.choice(range(3))
                clause[flip] = -clause[flip]
            clauses.append(clause)
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.satisfiable
        assert check_model(clauses, result.model)


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2]


class TestPropagationCounterRegression:
    """Pin the watched-literal scheme's exact behaviour on a fixed formula.

    The `_propagate` hot loop hoists attribute lookups into locals and only
    rebuilds a watch list when a watch actually moved; none of that may
    change *what* is propagated.  The counters below were recorded on the
    straightforward always-rebuild implementation — any drift means the
    optimisation changed semantics, not just speed.
    """

    def _fixed_formula(self):
        rng = random.Random(42)
        clauses = []
        for _ in range(126):
            clause = sorted(rng.sample(range(1, 31), 3))
            clauses.append([v if rng.random() < 0.5 else -v for v in clause])
        return clauses

    def test_counters_unchanged_on_fixed_formula(self):
        clauses = self._fixed_formula()
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.satisfiable
        assert check_model(clauses, result.model)
        assert (result.propagations, result.decisions, result.conflicts) == (52, 15, 5)

    def test_counters_unchanged_under_assumptions(self):
        clauses = self._fixed_formula()
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve()
        result = solver.solve(assumptions=[1, -2])
        assert result.satisfiable
        assert (result.propagations, result.decisions, result.conflicts) == (30, 9, 0)

    def test_unmoved_watch_lists_keep_their_contents(self):
        # A solve that moves no watches must leave every clause still
        # watched by exactly two literals (the invariant the lazy rebuild
        # relies on); re-solving after backtracking exercises the same
        # lists again and must reach the same model.
        solver = SatSolver()
        solver.add_clause([1, 2, 3])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        first = solver.solve()
        second = solver.solve()
        assert first.satisfiable and second.satisfiable
        assert first.model == second.model
