"""Tests for VCD export and counterexample replay."""

import io

import pytest

from repro.core import TrojanDetectionFlow, replay_counterexample
from repro.sim import Simulator, Trace, trace_to_vcd_string, write_vcd
from repro.trusthub import load_design, load_module
from repro.core import DetectionConfig


class TestVcdWriter:
    def _trace(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        return simulator.run([{"din": value} for value in (1, 2, 3, 2)])

    def test_header_and_variables(self, pipeline_module):
        text = trace_to_vcd_string(self._trace(pipeline_module), pipeline_module.signals)
        assert "$timescale" in text
        assert "$var wire 8" in text and "dout" in text
        assert "$enddefinitions" in text

    def test_value_changes_only_on_change(self, pipeline_module):
        trace = Trace()
        trace.record({"dout": 5})
        trace.record({"dout": 5})
        trace.record({"dout": 6})
        text = trace_to_vcd_string(trace, {"dout": 8})
        assert text.count("b00000101 ") == 1
        assert text.count("b00000110 ") == 1

    def test_single_bit_format(self):
        trace = Trace()
        trace.record({"flag": 1})
        trace.record({"flag": 0})
        text = trace_to_vcd_string(trace, {"flag": 1})
        lines = [line for line in text.splitlines() if line and line[0] in "01"]
        assert lines[0].startswith("1") and lines[1].startswith("0")

    def test_signal_subset(self, pipeline_module):
        text = trace_to_vcd_string(
            self._trace(pipeline_module), pipeline_module.signals, signals=["dout"]
        )
        assert "dout" in text and "s1" not in text.split("$enddefinitions")[0].replace("dout", "")

    def test_hierarchical_names_are_sanitised(self, counter_module):
        simulator = Simulator(counter_module)
        trace = simulator.run([{"rst": 0, "en": 1}] * 3)
        text = trace_to_vcd_string(trace, counter_module.signals, signals=["u_cnt.cnt"])
        assert "u_cnt_cnt" in text

    def test_values_masked_to_declared_width(self):
        # A value wider than the $var declaration (or negative) must be
        # truncated to the declared width — `b101` on a 2-bit signal is a
        # malformed VCD that waveform viewers reject.
        trace = Trace()
        trace.record({"narrow": 5, "flag": 2, "signed": -1})
        text = trace_to_vcd_string(trace, {"narrow": 2, "flag": 1, "signed": 4})
        lines = text.splitlines()
        assert any(line.startswith("b01 ") for line in lines)       # 5 & 0b11
        assert not any(line.startswith("b101") for line in lines)
        assert any(line.startswith("b1111 ") for line in lines)     # -1 & 0xf
        assert any(line[0] == "0" and not line.startswith("0 ") for line in lines)  # 2 & 1

    def test_ieee1364_round_trip(self):
        # Parse the dump back with a minimal IEEE 1364 reader: every change
        # line must be `b<bits> <id>` (vector) or `<bit><id>` (scalar), with
        # exactly as many bits as the $var declared, and the reconstructed
        # final values must match the recorded trace.
        trace = Trace()
        trace.record({"bus": 0x1F5, "bit": 1})
        trace.record({"bus": 2, "bit": 0})
        widths = {"bus": 10, "bit": 1}
        text = trace_to_vcd_string(trace, widths)
        width_by_id, name_by_id = {}, {}
        values = {}
        for line in text.splitlines():
            if line.startswith("$var"):
                _var, _wire, width, identifier, name = line.split()[:5]
                width_by_id[identifier] = int(width)
                name_by_id[identifier] = name
            elif line.startswith("b"):
                bits, identifier = line.split()
                assert len(bits) - 1 == width_by_id[identifier], line
                values[name_by_id[identifier]] = int(bits[1:], 2)
            elif line and line[0] in "01" and not line.startswith("#"):
                identifier = line[1:]
                assert width_by_id[identifier] == 1, line
                values[name_by_id[identifier]] = int(line[0])
        assert values == {"bus": 2, "bit": 0}

    def test_empty_trace_rejected(self, pipeline_module):
        with pytest.raises(ValueError):
            write_vcd(Trace(), pipeline_module.signals, io.StringIO())

    def test_write_to_file(self, tmp_path, pipeline_module):
        path = tmp_path / "wave.vcd"
        with open(path, "w", encoding="utf-8") as handle:
            write_vcd(self._trace(pipeline_module), pipeline_module.signals, handle)
        assert path.read_text().startswith("$date")


class TestCounterexampleReplay:
    def test_replay_confirms_toy_trojan(self, trojaned_module):
        flow = TrojanDetectionFlow(trojaned_module)
        report = flow.run()
        assert report.counterexample is not None
        outcome = report.failing_outcome()
        replay = replay_counterexample(trojaned_module, outcome.result.prop, report.counterexample)
        assert replay.confirmed
        signals = [entry[0] for entry in replay.divergent_signals]
        assert "dout" in signals
        assert "confirmed" in replay.summary()
        assert len(replay.traces[0]) == len(replay.traces[1])

    def test_replay_traces_can_be_dumped_as_vcd(self, trojaned_module):
        flow = TrojanDetectionFlow(trojaned_module)
        report = flow.run()
        outcome = report.failing_outcome()
        replay = replay_counterexample(trojaned_module, outcome.result.prop, report.counterexample)
        text = trace_to_vcd_string(replay.traces[0], trojaned_module.signals)
        assert "$enddefinitions" in text

    def test_replay_confirms_aes_t1400(self):
        design = load_design("AES-T1400")
        module = load_module("AES-T1400")
        flow = TrojanDetectionFlow(module, DetectionConfig(inputs=list(design.data_inputs)))
        report = flow.run()
        outcome = report.failing_outcome()
        replay = replay_counterexample(module, outcome.result.prop, report.counterexample)
        assert replay.confirmed
        assert any(signal.startswith("tj_") for signal, *_ in replay.divergent_signals)
