"""Functional validation of the regenerated Trust-Hub-style benchmark designs.

These tests establish that the accelerator cores are *real* implementations
of their algorithms (checked against the reference models by simulation) and
that every Trojan stays dormant under normal operation — the premise that
makes the Trojans realistic and dynamic testing ineffective.
"""

import pytest

from repro.crypto.aes_ref import aes128_encrypt_block
from repro.crypto.rsa_ref import mod_exp
from repro.sim import Simulator
from repro.trusthub import catalog, design_names, load_design, load_module
from repro.trusthub.aes_core import AES_LATENCY
from repro.trusthub.aes_trojans import AES_TROJAN_SPECS
from repro.trusthub.rsa_core import RSA_LATENCY
from repro.trusthub.uart_core import BAUD_DIV


AES_VECTORS = [
    (0x3243F6A8885A308D313198A2E0370734, 0x2B7E151628AED2A6ABF7158809CF4F3C),
    (0x00112233445566778899AABBCCDDEEFF, 0x000102030405060708090A0B0C0D0E0F),
    (0, 0),
]


def run_aes(module, plaintext, key, cycles=AES_LATENCY):
    simulator = Simulator(module)
    values = {}
    for _ in range(cycles):
        values = simulator.step({"state": plaintext, "key": key})
    return values["out"]


class TestAesCore:
    @pytest.mark.parametrize("plaintext, key", AES_VECTORS)
    def test_matches_reference(self, plaintext, key):
        module = load_module("AES-HT-FREE")
        assert run_aes(module, plaintext, key) == aes128_encrypt_block(plaintext, key)

    def test_pipelining_one_block_per_cycle(self):
        module = load_module("AES-HT-FREE")
        simulator = Simulator(module)
        blocks = [(i * 0x1111111111111111, 0x0F0F << i) for i in range(4)]
        outputs = []
        for cycle in range(AES_LATENCY + len(blocks)):
            if cycle < len(blocks):
                plaintext, key = blocks[cycle]
            else:
                plaintext, key = 0, 0
            values = simulator.step({"state": plaintext, "key": key})
            outputs.append(values["out"])
        for index, (plaintext, key) in enumerate(blocks):
            assert outputs[AES_LATENCY - 1 + index] == aes128_encrypt_block(plaintext, key)

    def test_structural_depth_matches_paper_scale(self):
        from repro.rtl import compute_fanout_classes

        module = load_module("AES-HT-FREE")
        analysis = compute_fanout_classes(module)
        assert analysis.placement["out"] == 22
        assert not analysis.uncovered


class TestAesTrojansDormant:
    @pytest.mark.parametrize("name", ["AES-T100", "AES-T1400", "AES-T1900", "AES-T2500", "AES-T2800"])
    def test_trojan_designs_still_encrypt_correctly(self, name):
        # With benign stimuli the Trojan stays dormant (or, for the
        # cycle-counter designs, has not yet reached its threshold), so the
        # ciphertext equals the reference — this is what makes them stealthy.
        module = load_module(name)
        plaintext, key = AES_VECTORS[0]
        assert run_aes(module, plaintext, key) == aes128_encrypt_block(plaintext, key)

    def test_t2500_payload_fires_after_threshold(self):
        spec = AES_TROJAN_SPECS["AES-T2500"]
        module = load_module("AES-T2500")
        plaintext, key = AES_VECTORS[0]
        expected = aes128_encrypt_block(plaintext, key)
        simulator = Simulator(module)
        flipped_cycles = 0
        for _ in range(AES_LATENCY + 40):
            values = simulator.step({"state": plaintext, "key": key})
            if values["out"] == expected ^ spec.payload.flip_mask:
                flipped_cycles += 1
        # The 4-bit counter reaches the threshold periodically: the LSB flip
        # must have been observable at least once (the payload is real).
        assert flipped_cycles >= 1

    def test_rf_design_has_antena_pin(self):
        module = load_module("AES-T1600")
        assert "antena" in module.outputs

    def test_catalogue_matches_table1_expectations(self):
        designs = catalog()
        # 25 infested AES designs + HT-free, 3 RSA + HT-free, 1 UART + HT-free.
        assert len(design_names(family="AES", with_trojan=True)) == 25
        assert len(design_names(family="BasicRSA", with_trojan=True)) == 3
        assert len(design_names(family="RS232", with_trojan=True)) == 1
        for name, design in designs.items():
            if design.has_trojan:
                assert design.expected_detection != "secure", name
            else:
                assert design.expected_detection == "secure", name

    def test_unknown_design_raises(self):
        from repro.errors import DesignError

        with pytest.raises(DesignError):
            load_design("AES-T9999")


class TestRsaCore:
    @pytest.mark.parametrize(
        "message, exponent, modulus",
        [(65, 17, 3233), (1234, 77, 56153), (2, 255, 65521), (0, 13, 101)],
    )
    def test_matches_reference(self, message, exponent, modulus):
        module = load_module("BasicRSA-HT-FREE")
        simulator = Simulator(module)
        values = {}
        stimulus = {"ds": 1, "indata": message, "inExp": exponent, "inMod": modulus}
        for _ in range(RSA_LATENCY):
            values = simulator.step(stimulus)
        assert values["cypher"] == mod_exp(message, exponent, modulus)
        assert values["ready"] == 1

    def test_trojan_design_dormant_result_correct(self):
        module = load_module("BasicRSA-T300")
        simulator = Simulator(module)
        stimulus = {"ds": 1, "indata": 65, "inExp": 17, "inMod": 3233}
        values = {}
        for _ in range(RSA_LATENCY):
            values = simulator.step(stimulus)
        assert values["cypher"] == mod_exp(65, 17, 3233)


class TestUartCore:
    def _transmit(self, module, byte):
        """Drive the transmitter and capture the serial frame on txd."""
        simulator = Simulator(module)
        simulator.step({"rst": 1, "rxd": 1})
        samples = []
        simulator.step({"rst": 0, "tx_data": byte, "tx_send": 1, "rxd": 1})
        for _ in range(BAUD_DIV * 12):
            values = simulator.step({"rst": 0, "tx_send": 0, "rxd": 1})
            samples.append(values["txd"])
        return samples

    def test_transmitter_frames_data(self):
        module = load_module("RS232-HT-FREE")
        samples = self._transmit(module, 0xA5)
        # Start bit (0) must appear, followed by the LSB-first data bits.
        assert 0 in samples
        start = samples.index(0)
        bits = [samples[start + BAUD_DIV * (1 + i)] for i in range(8)]
        assert int("".join(str(b) for b in reversed(bits)), 2) == 0xA5

    def test_loopback_receiver_recovers_byte(self):
        module = load_module("RS232-HT-FREE")
        simulator = Simulator(module)
        simulator.step({"rst": 1, "rxd": 1})
        byte = 0x3C
        frame = [0] + [(byte >> i) & 1 for i in range(8)] + [1]
        received = None
        cycle_inputs = []
        for bit in frame:
            cycle_inputs.extend([bit] * BAUD_DIV)
        cycle_inputs.extend([1] * (BAUD_DIV * 3))
        for rxd in cycle_inputs:
            values = simulator.step({"rst": 0, "rxd": rxd, "tx_send": 0})
            if values["rx_valid"]:
                received = values["rx_data"]
        assert received == byte

    def test_trojaned_uart_dormant_below_threshold(self):
        module = load_module("RS232-T2400")
        simulator = Simulator(module)
        simulator.step({"rst": 1, "rxd": 1})
        byte = 0x3C
        frame = [0] + [(byte >> i) & 1 for i in range(8)] + [1]
        received = None
        for bit in frame:
            for _ in range(BAUD_DIV):
                values = simulator.step({"rst": 0, "rxd": bit, "tx_send": 0})
                if values["rx_valid"]:
                    received = values["rx_data"]
        for _ in range(BAUD_DIV * 2):
            values = simulator.step({"rst": 0, "rxd": 1, "tx_send": 0})
            if values["rx_valid"]:
                received = values["rx_data"]
        assert received == byte
