"""Tests for the parallel execution subsystem: executors, sharding, merging.

The headline contract: for any worker count, an audit produces the same
semantic report — verdict, outcome sequence, counterexamples for the same
failing class, coverage — as the serial run; only wall-clock timing and
solver/executor telemetry (which legitimately depend on how classes were
sharded over solver contexts) may differ, and those are exactly the fields
``normalized_report_dict`` strips.
"""

import pytest
from hypothesis import given, strategies as st

from repro.api import (
    BatchReport,
    BatchSession,
    Design,
    DetectionConfig,
    DetectionSession,
    RunFinished,
    RunStarted,
)
from repro.core.events import ClassProven, PropertyScheduled
from repro.core.report import DetectionReport, Verdict
from repro.errors import ReproError
from repro.exec import (
    ChunkTask,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkUnit,
    normalized_batch_report_dict,
    normalized_report_dict,
    shard_indices,
)
from repro.rtl import elaborate_source

CLEAN_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] s1;
  reg [7:0] s2;
  reg [7:0] s3;
  always @(posedge clk) begin
    s1 <= d ^ 8'h5a;
    s2 <= s1 + 8'h01;
    s3 <= s2 ^ 8'hc3;
  end
  assign q = s3;
endmodule
"""

TROJANED_SOURCE = """
module widget(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  reg [3:0] bomb;
  always @(posedge clk) begin
    stage <= d + 8'h1;
    bomb <= bomb + 4'h1;
  end
  assign q = (bomb == 4'hf) ? ~stage : stage;
endmodule
"""


class TestSharding:
    def test_serial_shards_per_class(self):
        assert shard_indices([0, 1, 2, 3], jobs=1) == [(0,), (1,), (2,), (3,)]

    def test_parallel_shards_cover_exactly_the_input(self):
        indices = list(range(23))
        shards = shard_indices(indices, jobs=4)
        flattened = [index for shard in shards for index in shard]
        assert flattened == indices
        assert len(shards) >= 4  # enough shards for stealing

    def test_shards_never_span_a_cached_gap(self):
        shards = shard_indices([0, 1, 3, 4, 5], jobs=1)
        assert (2,) not in shards
        for shard in shard_indices([0, 1, 3, 4, 5], jobs=2):
            assert list(shard) == sorted(shard)
            assert 2 not in shard

    def test_empty(self):
        assert shard_indices([], jobs=4) == []


class TestShardingProperties:
    """Hypothesis-driven invariants of shard_indices over arbitrary index
    sets (the survivors of a cache lookup — any subset of 0..n with gaps
    wherever a class was already settled) and worker counts."""

    indices = st.lists(
        st.integers(min_value=0, max_value=200), max_size=60, unique=True
    )
    jobs = st.integers(min_value=1, max_value=9)

    @given(indices=indices, jobs=jobs)
    def test_shards_partition_the_uncached_indices_exactly(self, indices, jobs):
        shards = shard_indices(indices, jobs)
        flattened = [index for shard in shards for index in shard]
        # Exact partition: every miss appears exactly once, in class order,
        # so the merge loop can wait on shards in submission order.
        assert flattened == sorted(indices)

    @given(indices=indices, jobs=jobs)
    def test_shards_are_contiguous_runs_of_misses(self, indices, jobs):
        # A shard never spans a cached gap: each one is a contiguous index
        # run, so a worker's incremental solver context only ever extends
        # the same assumption prefix.
        present = set(indices)
        for shard in shard_indices(indices, jobs):
            assert list(shard) == list(range(shard[0], shard[-1] + 1))
            assert present.issuperset(shard)

    @given(indices=indices, jobs=jobs)
    def test_shard_sizes_respect_the_jobs_derived_bound(self, indices, jobs):
        shards = shard_indices(indices, jobs)
        if jobs <= 1:
            # Serial execution maximizes streaming laziness: one class per
            # shard, no look-ahead solving before the consumer asks.
            assert all(len(shard) == 1 for shard in shards)
        elif shards:
            # Parallel shards aim for ~4 shards per worker; the ceil-divided
            # chunk size bounds every shard, keeping steal granularity fine
            # enough that no worker hoards a quarter of the run.
            bound = -(-len(indices) // max(1, jobs * 4))
            assert max(len(shard) for shard in shards) <= bound

    @given(indices=indices, jobs=jobs, max_shards=st.integers(1, 12))
    def test_explicit_max_shards_budget_is_honoured(self, indices, jobs, max_shards):
        if jobs <= 1:
            return  # the serial path ignores the budget (one class each)
        shards = shard_indices(indices, jobs, max_shards=max_shards)
        if shards:
            bound = -(-len(indices) // max_shards)
            assert max(len(shard) for shard in shards) <= bound


def _unit(source=CLEAN_SOURCE, **config_overrides):
    module = elaborate_source(source, "widget")
    return WorkUnit(
        key="k0",
        name="widget",
        module=module,
        config=DetectionConfig(**config_overrides),
    )


class TestExecutors:
    def test_serial_executor_yields_in_task_order(self):
        unit = _unit()
        executor = SerialExecutor({unit.key: unit})
        tasks = [
            ChunkTask(task_id=0, design_key="k0", indices=(0,), stop_on_failure=True),
            ChunkTask(task_id=1, design_key="k0", indices=(1, 2), stop_on_failure=True),
        ]
        outcomes = list(executor.run(tasks))
        assert [outcome.task_id for outcome in outcomes] == [0, 1]
        assert [result.index for result in outcomes[1].results] == [1, 2]
        assert all(result.outcome.holds for o in outcomes for result in o.results)

    def test_reported_workers_never_exceed_shard_count(self):
        # A 3-class design yields few shards; asking for 16 workers must not
        # make the report claim parallelism that never existed.
        report = _session_report(CLEAN_SOURCE, jobs=16)
        assert 1 <= report.workers <= 16
        assert report.workers <= len(report.outcomes) * 2  # bounded by shards

    def test_serial_executor_evicts_least_recently_used_contexts(self):
        from repro.exec.executor import MAX_CONTEXTS_PER_WORKER

        units = {}
        tasks = []
        for position in range(MAX_CONTEXTS_PER_WORKER + 2):
            module = elaborate_source(CLEAN_SOURCE, "widget")
            key = f"k{position}"
            units[key] = WorkUnit(
                key=key, name=f"widget-{position}", module=module,
                config=DetectionConfig(),
            )
            tasks.append(
                ChunkTask(task_id=position, design_key=key, indices=(0,),
                          stop_on_failure=True)
            )
        executor = SerialExecutor(units)
        outcomes = list(executor.run(tasks))
        assert len(outcomes) == len(tasks)
        assert len(executor._contexts) <= MAX_CONTEXTS_PER_WORKER

    def test_serial_executor_cancel_design_skips_pending_tasks(self):
        unit = _unit()
        executor = SerialExecutor({unit.key: unit})
        tasks = [
            ChunkTask(task_id=0, design_key="k0", indices=(0,), stop_on_failure=True),
            ChunkTask(task_id=1, design_key="k0", indices=(1,), stop_on_failure=True),
        ]
        stream = executor.run(tasks)
        first = next(stream)
        assert not first.skipped
        executor.cancel_design("k0")
        second = next(stream)
        assert second.skipped and second.results == []

    def test_pool_executor_settles_chunks_on_workers(self):
        unit = _unit()
        executor = ProcessPoolExecutor({unit.key: unit}, jobs=2)
        tasks = [
            ChunkTask(task_id=0, design_key="k0", indices=(0,), stop_on_failure=True),
            ChunkTask(task_id=1, design_key="k0", indices=(1,), stop_on_failure=True),
            ChunkTask(task_id=2, design_key="k0", indices=(2,), stop_on_failure=True),
        ]
        outcomes = list(executor.run(tasks))
        assert [outcome.task_id for outcome in outcomes] == [0, 1, 2]
        assert all(result.outcome.holds for o in outcomes for result in o.results)
        workers = {outcome.worker for outcome in outcomes}
        assert workers <= {"worker-0", "worker-1"}

    def test_pool_executor_propagates_worker_failures(self):
        # An unknown traced input only explodes inside the worker's fanout
        # analysis; the parent must fail loudly with the worker traceback.
        unit = _unit(inputs=["no_such_signal"])
        executor = ProcessPoolExecutor({unit.key: unit}, jobs=2)
        task = ChunkTask(task_id=0, design_key="k0", indices=(0,), stop_on_failure=True)
        with pytest.raises(ReproError, match="worker"):
            list(executor.run([task]))

    def test_pool_executor_rejects_serial_job_counts(self):
        unit = _unit()
        with pytest.raises(ReproError):
            ProcessPoolExecutor({unit.key: unit}, jobs=1)


def _session_report(source, **overrides):
    design = Design.from_source(source, top="widget")
    return DetectionSession(design, config=DetectionConfig(**overrides)).run()


class TestParallelDeterminism:
    def test_clean_design_reports_match_serial_modulo_telemetry(self):
        serial = _session_report(CLEAN_SOURCE, jobs=1)
        parallel = _session_report(CLEAN_SOURCE, jobs=2)
        assert parallel.workers == 2
        assert normalized_report_dict(parallel.to_dict()) == normalized_report_dict(
            serial.to_dict()
        )

    def test_trojaned_design_fails_identically(self):
        # Counterexamples are canonicalized on a fresh context, so even the
        # failing class's cex values are identical for any worker count.
        serial = _session_report(TROJANED_SOURCE, jobs=1)
        parallel = _session_report(TROJANED_SOURCE, jobs=2)
        assert parallel.verdict is Verdict.TROJAN_SUSPECTED
        assert parallel.detected_by == serial.detected_by
        assert parallel.counterexample is not None
        assert parallel.counterexample.values == serial.counterexample.values
        assert parallel.diagnosis is not None
        assert normalized_report_dict(parallel.to_dict()) == normalized_report_dict(
            serial.to_dict()
        )

    def test_solver_telemetry_covers_canonical_reproof(self):
        # The canonical fresh-context re-settle of a failing class is real
        # solver work; the report-level counters must include it, so they
        # are never smaller than what the per-outcome results claim.
        # simplify=False keeps the per-outcome counters non-zero (with the
        # default preprocessing, random simulation falsifies the tampered
        # class with zero CDCL calls).
        report = _session_report(TROJANED_SOURCE, jobs=1, simplify=False)
        assert report.trojan_detected
        # The failing class's *outcome* is the canonical witness settle
        # (which random simulation may satisfy with zero CDCL calls), but
        # the run-level counters still cover the fast path's real search.
        per_outcome = sum(o.result.solver_calls for o in report.outcomes)
        assert report.solver_calls >= per_outcome
        assert report.solver_calls > 0

    def test_simplify_modes_report_identical_results(self):
        # --no-simplify must change performance telemetry only: verdicts,
        # counterexamples and diagnoses are canonical either way.
        default = _session_report(TROJANED_SOURCE, jobs=1)
        plain = _session_report(TROJANED_SOURCE, jobs=1, simplify=False)
        assert default.counterexample.values == plain.counterexample.values
        assert normalized_report_dict(default.to_dict()) == normalized_report_dict(
            plain.to_dict()
        )
        # A --no-simplify report never shows preprocessing telemetry, even
        # though witness canonicalization preprocesses internally.
        assert plain.preprocess_sim_falsified == 0
        assert default.preprocess_sim_falsified > 0

    def test_check_all_settles_every_class_in_parallel(self):
        serial = _session_report(TROJANED_SOURCE, jobs=1, stop_at_first_failure=False)
        parallel = _session_report(TROJANED_SOURCE, jobs=2, stop_at_first_failure=False)
        assert len(parallel.outcomes) == len(serial.outcomes)
        assert [outcome.holds for outcome in parallel.outcomes] == [
            outcome.holds for outcome in serial.outcomes
        ]
        assert parallel.coverage is not None


class TestParallelEventStream:
    def test_events_arrive_in_class_order_with_timing(self):
        design = Design.from_source(CLEAN_SOURCE, top="widget")
        session = DetectionSession(design, config=DetectionConfig(jobs=2))
        events = list(session.iter_results())
        assert isinstance(events[0], RunStarted) and events[0].workers == 2
        assert isinstance(events[-1], RunFinished)
        assert events[-1].elapsed_s > 0
        assert events[-1].elapsed_s == events[-1].report.total_runtime_seconds
        scheduled = [event for event in events if isinstance(event, PropertyScheduled)]
        assert [event.index for event in scheduled] == list(
            range(events[0].scheduled_classes)
        )
        for event in events:
            if isinstance(event, ClassProven):
                assert event.solve_s >= 0

    def test_serial_run_finished_carries_elapsed(self):
        design = Design.from_source(CLEAN_SOURCE, top="widget")
        session = DetectionSession(design)
        events = list(session.iter_results())
        assert isinstance(events[-1], RunFinished) and events[-1].elapsed_s > 0


class TestShardedBatch:
    def test_batch_shards_designs_over_one_pool(self):
        clean = elaborate_source(CLEAN_SOURCE, "widget")
        trojaned = elaborate_source(TROJANED_SOURCE, "widget")
        serial = BatchSession([clean, trojaned]).run()
        batch = BatchSession([clean, trojaned], config=DetectionConfig(jobs=2))
        started = []
        batch.subscribe(started.append, RunStarted)
        report = batch.run()
        assert report.workers == 2
        assert [event.workers for event in started] == [2, 2]
        # Reports come back in queue order with the same verdicts.
        assert [entry.design for entry in report.reports] == [
            entry.design for entry in serial.reports
        ]
        assert [entry.verdict for entry in report.reports] == [
            entry.verdict for entry in serial.reports
        ]
        assert report.flagged_designs() == serial.flagged_designs()

    def test_batch_report_round_trips_workers(self):
        batch = BatchSession([elaborate_source(CLEAN_SOURCE, "widget")],
                             config=DetectionConfig(jobs=2))
        report = batch.run()
        restored = BatchReport.from_json(report.to_json())
        assert restored.workers == 2
        assert restored.to_dict() == report.to_dict()

    def test_normalized_batch_reports_match_serial(self):
        clean = elaborate_source(CLEAN_SOURCE, "widget")
        serial = BatchSession([clean]).run()
        parallel = BatchSession([clean], config=DetectionConfig(jobs=2)).run()
        assert normalized_batch_report_dict(
            parallel.to_dict()
        ) == normalized_batch_report_dict(serial.to_dict())


class TestBatchAggregationOrderIndependence:
    """Regression: aggregates must sum per-design snapshots, never depend on
    the order runs completed in (parallel batches finish out of order)."""

    def _reports(self):
        a = DetectionReport(design="a", verdict=Verdict.SECURE,
                            solver_calls=3, solver_conflicts=5, cnf_clauses=100)
        a.cache_hits, a.cache_misses = 2, 1
        b = DetectionReport(design="b", verdict=Verdict.SECURE,
                            solver_calls=7, solver_conflicts=1, cnf_clauses=40)
        b.cache_hits, b.cache_misses = 0, 4
        return a, b

    def test_solver_and_cache_stats_are_order_independent(self):
        a, b = self._reports()
        forward = BatchReport(reports=[a, b])
        backward = BatchReport(reports=[b, a])
        assert forward.solver_stats() == backward.solver_stats()
        assert forward.solver_stats()["solver_calls"] == 10
        assert forward.cache_stats() == backward.cache_stats()
        assert forward.cache_stats() == {"cache_hits": 2, "cache_misses": 5}

    def test_report_for_finds_designs_in_any_order(self):
        a, b = self._reports()
        backward = BatchReport(reports=[b, a])
        assert backward.report_for("a").solver_calls == 3
        assert backward.report_for("b").solver_calls == 7
