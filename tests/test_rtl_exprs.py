"""Tests for the word-level RTL expression IR."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import exprs
from repro.utils.bitvec import mask


def c(value, width):
    return exprs.const(value, width)


def r(name, width):
    return exprs.ref(name, width)


def ev(expr, **env):
    return exprs.evaluate(expr, lambda name: env[name])


class TestConstructors:
    def test_const_truncates(self):
        assert c(0x1FF, 8).value == 0xFF

    def test_concat_width(self):
        expr = exprs.concat((c(1, 4), c(2, 8)))
        assert expr.width == 12

    def test_concat_single_part_collapses(self):
        inner = c(3, 4)
        assert exprs.concat((inner,)) is inner

    def test_slice_full_width_collapses(self):
        base = r("x", 8)
        assert exprs.slice_expr(base, 0, 8) is base

    def test_mux_width_is_max(self):
        expr = exprs.mux(c(1, 1), c(0, 4), c(0, 8))
        assert expr.width == 8

    def test_insert_bits_middle(self):
        base = r("x", 8)
        inserted = exprs.insert_bits(base, 2, c(0b11, 2))
        assert inserted.width == 8
        value = ev(inserted, x=0b0000_0000)
        assert value == 0b0000_1100

    def test_insert_bits_full_width_replaces(self):
        base = r("x", 8)
        assert exprs.insert_bits(base, 0, c(5, 8)) == c(5, 8)

    def test_insert_bits_lsb(self):
        value = ev(exprs.insert_bits(r("x", 8), 0, c(0b1, 1)), x=0b1111_0000)
        assert value == 0b1111_0001

    def test_insert_bits_msb(self):
        value = ev(exprs.insert_bits(r("x", 8), 7, c(0b1, 1)), x=0)
        assert value == 0b1000_0000


class TestTraversal:
    def test_support_collects_refs(self):
        expr = exprs.Binop(8, exprs.BinaryOp.ADD, r("a", 8), exprs.mux(r("s", 1), r("b", 8), c(0, 8)))
        assert exprs.support(expr) == {"a", "s", "b"}

    def test_walk_visits_all_nodes(self):
        expr = exprs.Binop(8, exprs.BinaryOp.XOR, r("a", 8), r("b", 8))
        nodes = list(exprs.walk(expr))
        assert expr in nodes and len(nodes) == 3

    def test_substitute_replaces_refs(self):
        expr = exprs.Binop(8, exprs.BinaryOp.ADD, r("a", 8), r("b", 8))
        substituted = exprs.substitute(expr, {"a": c(1, 8)})
        assert exprs.support(substituted) == {"b"}
        assert ev(substituted, b=2) == 3

    def test_substitute_inside_lut_index(self):
        lut = exprs.Lut(width=8, index=r("a", 2), table=(1, 2, 3, 4))
        substituted = exprs.substitute(lut, {"a": c(2, 2)})
        assert ev(substituted) == 3

    def test_is_boolean_op(self):
        assert exprs.is_boolean_op(exprs.equals(r("a", 4), r("b", 4)))
        assert exprs.is_boolean_op(exprs.reduce_or(r("a", 4)))
        assert not exprs.is_boolean_op(c(1, 1))


class TestEvaluate:
    def test_constants_and_refs(self):
        assert ev(c(0x12, 8)) == 0x12
        assert ev(r("a", 4), a=0x1F) == 0xF  # truncated to declared width

    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (exprs.BinaryOp.AND, 0b1100, 0b1010, 0b1000),
            (exprs.BinaryOp.OR, 0b1100, 0b1010, 0b1110),
            (exprs.BinaryOp.XOR, 0b1100, 0b1010, 0b0110),
            (exprs.BinaryOp.ADD, 200, 100, (300) & 0xFF),
            (exprs.BinaryOp.SUB, 5, 10, (5 - 10) & 0xFF),
            (exprs.BinaryOp.MUL, 20, 20, 400 & 0xFF),
            (exprs.BinaryOp.MOD, 21, 8, 5),
            (exprs.BinaryOp.SHL, 0b1, 3, 0b1000),
            (exprs.BinaryOp.LSHR, 0b1000, 3, 0b1),
        ],
    )
    def test_arithmetic_ops(self, op, a, b, expected):
        expr = exprs.Binop(8, op, c(a, 8), c(b, 8))
        assert ev(expr) == expected

    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (exprs.BinaryOp.EQ, 5, 5, 1),
            (exprs.BinaryOp.NE, 5, 5, 0),
            (exprs.BinaryOp.ULT, 3, 5, 1),
            (exprs.BinaryOp.ULE, 5, 5, 1),
            (exprs.BinaryOp.UGT, 3, 5, 0),
            (exprs.BinaryOp.UGE, 5, 6, 0),
            (exprs.BinaryOp.LOG_AND, 2, 0, 0),
            (exprs.BinaryOp.LOG_OR, 2, 0, 1),
        ],
    )
    def test_comparison_ops(self, op, a, b, expected):
        expr = exprs.Binop(1, op, c(a, 8), c(b, 8))
        assert ev(expr) == expected

    @pytest.mark.parametrize(
        "op, operand, width, expected",
        [
            (exprs.UnaryOp.NOT, 0b1010, 4, 0b0101),
            (exprs.UnaryOp.NEG, 1, 8, 0xFF),
            (exprs.UnaryOp.RED_AND, 0xF, 4, 1),
            (exprs.UnaryOp.RED_AND, 0xE, 4, 0),
            (exprs.UnaryOp.RED_OR, 0, 4, 0),
            (exprs.UnaryOp.RED_OR, 2, 4, 1),
            (exprs.UnaryOp.RED_XOR, 0b0111, 4, 1),
            (exprs.UnaryOp.LOG_NOT, 0, 4, 1),
            (exprs.UnaryOp.LOG_NOT, 3, 4, 0),
        ],
    )
    def test_unary_ops(self, op, operand, width, expected):
        out_width = width if op in (exprs.UnaryOp.NOT, exprs.UnaryOp.NEG) else 1
        expr = exprs.Unop(out_width, op, c(operand, width))
        assert ev(expr) == expected

    def test_mux_selects_by_condition(self):
        expr = exprs.mux(r("s", 1), c(0xAA, 8), c(0x55, 8))
        assert ev(expr, s=1) == 0xAA
        assert ev(expr, s=0) == 0x55

    def test_concat_is_msb_first(self):
        expr = exprs.concat((c(0xA, 4), c(0x5, 4)))
        assert ev(expr) == 0xA5

    def test_slice(self):
        expr = exprs.slice_expr(c(0xABCD, 16), 4, 8)
        assert ev(expr) == 0xBC

    def test_lut_lookup(self):
        lut = exprs.Lut(width=8, index=r("i", 2), table=(10, 20, 30, 40))
        assert ev(lut, i=2) == 30

    def test_lut_out_of_range_is_zero(self):
        lut = exprs.Lut(width=8, index=r("i", 4), table=(10, 20))
        assert ev(lut, i=9) == 0

    def test_mod_by_zero_is_zero(self):
        assert ev(exprs.Binop(8, exprs.BinaryOp.MOD, c(5, 8), c(0, 8))) == 0

    def test_unknown_node_type_raises(self):
        class Strange(exprs.Expr):
            pass

        with pytest.raises(TypeError):
            exprs.evaluate(Strange(width=1), lambda name: 0)


_word = st.integers(min_value=0, max_value=0xFFFF)


class TestEvaluatePropertyBased:
    @given(a=_word, b=_word)
    def test_add_matches_python(self, a, b):
        expr = exprs.Binop(16, exprs.BinaryOp.ADD, c(a, 16), c(b, 16))
        assert ev(expr) == (a + b) & mask(16)

    @given(a=_word, b=_word)
    def test_xor_matches_python(self, a, b):
        expr = exprs.Binop(16, exprs.BinaryOp.XOR, c(a, 16), c(b, 16))
        assert ev(expr) == a ^ b

    @given(a=_word, b=_word)
    def test_comparison_matches_python(self, a, b):
        expr = exprs.Binop(1, exprs.BinaryOp.ULT, c(a, 16), c(b, 16))
        assert ev(expr) == int(a < b)

    @given(a=_word, b=_word)
    def test_insert_then_slice_roundtrip(self, a, b):
        base = c(a, 16)
        inserted = exprs.insert_bits(base, 4, c(b & 0xF, 4))
        assert ev(exprs.slice_expr(inserted, 4, 4)) == b & 0xF
        assert ev(exprs.slice_expr(inserted, 0, 4)) == a & 0xF
        assert ev(exprs.slice_expr(inserted, 8, 8)) == (a >> 8) & 0xFF
