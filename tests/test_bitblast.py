"""Tests for word-level to AIG bit-blasting.

Strategy: build an expression, blast it over fresh vectors, evaluate the AIG
under concrete input values and compare against the word-level reference
evaluator of :mod:`repro.rtl.exprs`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG
from repro.aig.bitblast import BitBlaster
from repro.errors import BitblastError
from repro.rtl import exprs
from repro.utils.bitvec import from_bits, to_bits


def blast_and_eval(expr, signal_widths, assignments):
    """Blast ``expr`` and evaluate the AIG under ``assignments``."""
    aig = AIG()
    blaster = BitBlaster(aig)
    env = {name: blaster.fresh_vector(name, width) for name, width in signal_widths.items()}
    vector = blaster.blast(expr, env)
    input_values = {}
    for name, width in signal_widths.items():
        bits = to_bits(assignments[name], width)
        for literal, bit in zip(env[name], bits):
            input_values[literal >> 1] = bit
    return from_bits(aig.evaluate(vector, input_values))


def reference_eval(expr, assignments):
    return exprs.evaluate(expr, lambda name: assignments[name])


def check(expr, signal_widths, assignments):
    assert blast_and_eval(expr, signal_widths, assignments) == reference_eval(expr, assignments)


_W8 = st.integers(min_value=0, max_value=0xFF)


class TestOperators:
    @pytest.mark.parametrize("op", [
        exprs.BinaryOp.AND, exprs.BinaryOp.OR, exprs.BinaryOp.XOR,
        exprs.BinaryOp.ADD, exprs.BinaryOp.SUB, exprs.BinaryOp.MUL,
    ])
    @given(a=_W8, b=_W8)
    @settings(max_examples=10, deadline=None)
    def test_word_ops_match_reference(self, op, a, b):
        expr = exprs.Binop(8, op, exprs.ref("a", 8), exprs.ref("b", 8))
        check(expr, {"a": 8, "b": 8}, {"a": a, "b": b})

    @pytest.mark.parametrize("op", [
        exprs.BinaryOp.EQ, exprs.BinaryOp.NE, exprs.BinaryOp.ULT,
        exprs.BinaryOp.ULE, exprs.BinaryOp.UGT, exprs.BinaryOp.UGE,
        exprs.BinaryOp.LOG_AND, exprs.BinaryOp.LOG_OR,
    ])
    @given(a=_W8, b=_W8)
    @settings(max_examples=10, deadline=None)
    def test_boolean_ops_match_reference(self, op, a, b):
        expr = exprs.Binop(1, op, exprs.ref("a", 8), exprs.ref("b", 8))
        check(expr, {"a": 8, "b": 8}, {"a": a, "b": b})

    @pytest.mark.parametrize("op", [
        exprs.UnaryOp.NOT, exprs.UnaryOp.NEG, exprs.UnaryOp.RED_AND,
        exprs.UnaryOp.RED_OR, exprs.UnaryOp.RED_XOR, exprs.UnaryOp.LOG_NOT,
    ])
    @given(a=_W8)
    @settings(max_examples=10, deadline=None)
    def test_unary_ops_match_reference(self, op, a):
        width = 8 if op in (exprs.UnaryOp.NOT, exprs.UnaryOp.NEG) else 1
        expr = exprs.Unop(width, op, exprs.ref("a", 8))
        check(expr, {"a": 8}, {"a": a})

    @given(a=_W8, shift=st.integers(min_value=0, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_shift_by_constant(self, a, shift):
        for op in (exprs.BinaryOp.SHL, exprs.BinaryOp.LSHR):
            expr = exprs.Binop(8, op, exprs.ref("a", 8), exprs.const(shift, 4))
            check(expr, {"a": 8}, {"a": a})

    @given(a=_W8, amount=st.integers(min_value=0, max_value=15))
    @settings(max_examples=10, deadline=None)
    def test_variable_shift(self, a, amount):
        for op in (exprs.BinaryOp.SHL, exprs.BinaryOp.LSHR):
            expr = exprs.Binop(8, op, exprs.ref("a", 8), exprs.ref("s", 4))
            check(expr, {"a": 8, "s": 4}, {"a": a, "s": amount})

    @given(a=_W8)
    @settings(max_examples=10, deadline=None)
    def test_modulo_power_of_two(self, a):
        expr = exprs.Binop(8, exprs.BinaryOp.MOD, exprs.ref("a", 8), exprs.const(16, 8))
        check(expr, {"a": 8}, {"a": a})

    def test_modulo_non_power_of_two_rejected(self):
        aig = AIG()
        blaster = BitBlaster(aig)
        expr = exprs.Binop(8, exprs.BinaryOp.MOD, exprs.ref("a", 8), exprs.const(10, 8))
        with pytest.raises(BitblastError):
            blaster.blast(expr, {"a": blaster.fresh_vector("a", 8)})

    @given(s=st.integers(min_value=0, max_value=1), a=_W8, b=_W8)
    @settings(max_examples=10, deadline=None)
    def test_mux(self, s, a, b):
        expr = exprs.mux(exprs.ref("s", 1), exprs.ref("a", 8), exprs.ref("b", 8))
        check(expr, {"s": 1, "a": 8, "b": 8}, {"s": s, "a": a, "b": b})

    @given(a=_W8, b=st.integers(min_value=0, max_value=0xF))
    @settings(max_examples=10, deadline=None)
    def test_concat_and_slice(self, a, b):
        expr = exprs.slice_expr(exprs.concat((exprs.ref("a", 8), exprs.ref("b", 4))), 2, 6)
        check(expr, {"a": 8, "b": 4}, {"a": a, "b": b})


class TestLut:
    def test_lut_matches_table(self):
        table = tuple((i * 7 + 3) & 0xFF for i in range(16))
        expr = exprs.Lut(width=8, index=exprs.ref("i", 4), table=table)
        for index in range(16):
            assert blast_and_eval(expr, {"i": 4}, {"i": index}) == table[index]

    def test_lut_with_constant_index_folds(self):
        aig = AIG()
        blaster = BitBlaster(aig)
        expr = exprs.Lut(width=8, index=exprs.const(3, 4), table=tuple(range(16)))
        vector = blaster.blast(expr, {})
        assert from_bits(aig.evaluate(vector, {})) == 3
        assert aig.num_and_nodes == 0

    def test_lut_node_count_is_compact(self):
        """A 256x8 LUT must use the shared decoder, not a naive mux chain."""
        from repro.crypto.aes_ref import SBOX

        aig = AIG()
        blaster = BitBlaster(aig)
        expr = exprs.Lut(width=8, index=exprs.ref("a", 8), table=SBOX)
        blaster.blast(expr, {"a": blaster.fresh_vector("a", 8)})
        assert aig.num_and_nodes < 3000

    def test_sbox_lut_matches_reference(self):
        from repro.crypto.aes_ref import SBOX

        expr = exprs.Lut(width=8, index=exprs.ref("a", 8), table=SBOX)
        for value in (0x00, 0x01, 0x53, 0x7F, 0x80, 0xAA, 0xFF):
            assert blast_and_eval(expr, {"a": 8}, {"a": value}) == SBOX[value]


class TestStructuralSharing:
    def test_identical_cones_over_same_vectors_share_literals(self):
        aig = AIG()
        blaster = BitBlaster(aig)
        env = {"a": blaster.fresh_vector("a", 8), "b": blaster.fresh_vector("b", 8)}
        expr = exprs.Binop(8, exprs.BinaryOp.ADD, exprs.ref("a", 8), exprs.ref("b", 8))
        first = blaster.blast(expr, env)
        second = blaster.blast(expr, env)
        assert first == second

    def test_equal_vectors_literal(self):
        aig = AIG()
        blaster = BitBlaster(aig)
        a = blaster.fresh_vector("a", 8)
        assert blaster.equal_vectors(a, list(a)) == 1  # TRUE

    def test_missing_signal_raises(self):
        blaster = BitBlaster(AIG())
        with pytest.raises(BitblastError):
            blaster.blast(exprs.ref("ghost", 4), {})
