"""Tests for the simulation-guided preprocessing subsystem (repro.aig).

Invariants under test:

* the rewrite pass (:func:`repro.aig.simplify.simplify_cone`) and the fraig
  sweep (:class:`repro.aig.fraig.FraigContext`) are *equivalence-preserving*
  — rebuilt cones compute the same function, cross-checked with random
  bit-parallel simulation after the sweep;
* sim-first falsification yields genuine counterexamples with zero CDCL
  calls, and trojan counterexamples survive simplification byte-identically
  under ``exec.normalized_report_dict`` (``--no-simplify`` vs default,
  ``--jobs 1`` vs ``--jobs 2``) across the RS232/AES/SEQ benchmark families;
* the new config knobs validate, fingerprint, and reach the CLI.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG, FALSE, TRUE, negate
from repro.aig.fraig import FraigContext
from repro.aig.simplify import cone_size, rewrite_and, simplify_cone
from repro.aig.simvec import (
    PatternSet,
    find_satisfying_pattern,
    minimize_assignment,
    node_signatures,
)
from repro.api import Design, DetectionConfig, DetectionSession, Waiver
from repro.api.events import CexFound, ClassSimFalsified, ConeSimplified
from repro.errors import ConfigError
from repro.exec import normalized_report_dict
from repro.sat.context import SolverContext


def _random_cone(rng, aig=None, num_inputs=6, num_gates=40):
    aig = aig or AIG()
    literals = [aig.add_input(f"i{k}") for k in range(num_inputs)] or aig.inputs()
    for _ in range(num_gates):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_(a, b))
    return aig, literals[-1] ^ rng.randint(0, 1)


def _functions_agree(aig, left, right, patterns=256, seed=7):
    rng = random.Random(seed)
    inputs = aig.inputs()
    words = {node: rng.getrandbits(patterns) for node in inputs}
    mask = (1 << patterns) - 1
    left_word, right_word = aig.evaluate_words([left, right], words, mask)
    return left_word == right_word


class TestPatternSet:
    def test_words_are_deterministic_and_order_independent(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        root = aig.and_(a, b)
        one = PatternSet(64)
        one.ensure_inputs(aig, [root])
        two = PatternSet(64)
        two.ensure_inputs(aig, [b])  # different discovery order
        two.ensure_inputs(aig, [root])
        assert one.words == two.words

    def test_add_pattern_appends_a_column(self):
        aig = AIG()
        a = aig.add_input("a")
        patterns = PatternSet(8)
        patterns.ensure_inputs(aig, [a])
        index = patterns.add_pattern({a >> 1: 1})
        assert index == 8
        assert patterns.num_patterns == 9
        assert (patterns.words[a >> 1] >> index) & 1 == 1

    def test_find_satisfying_pattern_respects_all_goals(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        patterns = PatternSet(64)
        index = find_satisfying_pattern(aig, [a, negate(b)], patterns)
        assert index is not None
        assert (patterns.words[a >> 1] >> index) & 1 == 1
        assert (patterns.words[b >> 1] >> index) & 1 == 0
        assert find_satisfying_pattern(aig, [a, negate(a)], patterns) is None

    def test_minimize_assignment_zeroes_irrelevant_inputs(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        goal = aig.and_(a, b)  # c is irrelevant
        full = {a >> 1: 1, b >> 1: 1, c >> 1: 1}
        minimized = minimize_assignment(aig, [goal], full)
        assert minimized == {a >> 1: 1, b >> 1: 1, c >> 1: 0}
        assert aig.evaluate([goal], minimized) == [1]


class TestRewriteRules:
    def test_containment_and_contradiction(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        ab = aig.and_(a, b)
        assert rewrite_and(aig, ab, a) == ab
        assert rewrite_and(aig, ab, negate(a)) == FALSE

    def test_negated_and_substitution(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        nab = negate(aig.and_(a, b))
        assert rewrite_and(aig, nab, a) == aig.and_(a, negate(b))
        assert rewrite_and(aig, nab, negate(a)) == negate(a)

    def test_cross_and_contradiction(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        assert rewrite_and(aig, aig.and_(a, b), aig.and_(negate(a), c)) == FALSE

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50)
    def test_rewrite_preserves_function_on_random_cones(self, seed):
        rng = random.Random(seed)
        aig, root = _random_cone(rng)
        result = simplify_cone(aig, [root])
        assert _functions_agree(aig, root, result.roots[0])
        assert result.nodes_after <= result.nodes_before


class TestFraigSweep:
    def _duplicated_cone(self):
        """Two structurally different but equivalent cones: x&(y&z) vs (x&y)&z
        built around a blocker input so strashing cannot collapse them."""
        aig = AIG()
        x = aig.add_input("x")
        y = aig.add_input("y")
        z = aig.add_input("z")
        left = aig.and_(x, aig.and_(y, z))
        right = aig.and_(aig.and_(x, y), z)
        return aig, left, right

    def test_sweep_merges_equivalent_nodes(self):
        aig, left, right = self._duplicated_cone()
        assert left != right  # strash alone cannot identify them
        miter = aig.xor(left, right)
        fraig = FraigContext(
            aig=aig,
            context=SolverContext(aig, backend="python"),
            patterns=PatternSet(64),
            rounds=2,
        )
        swept, stats = fraig.sweep([miter])
        assert stats.merged_nodes >= 1
        assert swept.roots[0] == FALSE  # proven equivalent -> miter collapses
        assert _functions_agree(aig, miter, swept.roots[0])

    def test_sweep_proves_constant_trigger_cones(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        # a & !a & b is structurally folded; build a non-obvious constant:
        # (a & b) & (a & !b) == 0, hidden behind two gates.
        constant = aig.and_(aig.and_(a, b), aig.and_(a, negate(b)))
        if constant == FALSE:
            pytest.skip("constructor folded the cone; nothing to sweep")
        fraig = FraigContext(
            aig=aig,
            context=SolverContext(aig, backend="python"),
            patterns=PatternSet(64),
        )
        swept, _stats = fraig.sweep([constant])
        assert swept.roots[0] == FALSE

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_sweep_preserves_function_on_random_cones(self, seed):
        rng = random.Random(seed)
        aig, root = _random_cone(rng, num_inputs=5, num_gates=30)
        fraig = FraigContext(
            aig=aig,
            context=SolverContext(aig, backend="python"),
            patterns=PatternSet(32),
            rounds=2,
        )
        swept, _stats = fraig.sweep([root])
        assert _functions_agree(aig, root, swept.roots[0])
        # Merges must also hold under fresh random patterns (post-sweep
        # cross-check with a seed the sweep never saw).
        assert _functions_agree(aig, root, swept.roots[0], seed=seed ^ 0xDEAD)


def _benchmark_config(design: Design, **overrides) -> DetectionConfig:
    waivers = [
        Waiver(signal=name, reason=f"recommended for {design.name}")
        for name in design.recommended_waivers
    ]
    kwargs = dict(inputs=list(design.data_inputs) or None, waivers=waivers)
    kwargs.update(overrides)
    return DetectionConfig(**kwargs)


def _audit(name: str, **overrides):
    design = Design.from_benchmark(name)
    if "-SEQ-" in name:
        config = DetectionConfig(mode="sequential", depth=8, **overrides)
    else:
        config = _benchmark_config(design, **overrides)
    return DetectionSession(design, config=config).run()


class TestSimplifyEquivalence:
    """Trojan counterexamples survive simplification byte-identically."""

    @pytest.mark.parametrize(
        "bench_name",
        ["RS232-T2400", "RS232-HT-FREE", "AES-T1400", "RS232-SEQ-T3000"],
    )
    def test_no_simplify_and_default_reports_are_identical(self, bench_name):
        default = _audit(bench_name)
        plain = _audit(bench_name, simplify=False)
        assert normalized_report_dict(default.to_dict()) == normalized_report_dict(
            plain.to_dict()
        )
        if default.counterexample is not None:
            assert (
                default.counterexample.values == plain.counterexample.values
            ), "counterexample must be byte-identical across simplify modes"

    @pytest.mark.parametrize("bench_name", ["RS232-T2400", "RS232-SEQ-T3000"])
    def test_jobs_one_and_two_reports_are_identical(self, bench_name):
        serial = _audit(bench_name)
        parallel = _audit(bench_name, jobs=2)
        assert normalized_report_dict(serial.to_dict()) == normalized_report_dict(
            parallel.to_dict()
        )

    def test_sim_falsification_skips_the_solver(self):
        report = _audit("RS232-T2400")
        assert report.trojan_detected
        assert report.preprocess_sim_falsified > 0
        assert report.solver_conflicts == 0
        failing = report.failing_outcome()
        assert failing.result.sim_falsified
        assert failing.result.solver_calls == 0

    def test_counterexample_is_a_genuine_witness(self):
        # The minimized sim-model must replay as a true divergence: both
        # instances' recorded output values differ in the failing signals.
        report = _audit("AES-T100")
        cex = report.counterexample
        assert cex is not None and cex.failing_signals
        for _signal, _time, left, right in cex.failing_signals:
            assert left != right

    def test_no_simplify_report_hides_preprocess_telemetry(self):
        report = _audit("RS232-T2400", simplify=False)
        assert report.trojan_detected
        assert report.preprocess_sim_falsified == 0
        assert report.preprocess_merged_nodes == 0


class TestPreprocessEventsAndConfig:
    def test_sim_falsified_event_is_emitted(self):
        design = Design.from_benchmark("RS232-T2400")
        session = DetectionSession(design, config=_benchmark_config(design))
        events = list(session.iter_results())
        assert any(isinstance(event, ClassSimFalsified) for event in events)
        cex_events = [event for event in events if isinstance(event, CexFound)]
        assert cex_events and not cex_events[-1].auto_resolvable

    def test_no_simplify_emits_no_preprocess_events(self):
        design = Design.from_benchmark("RS232-T2400")
        session = DetectionSession(
            design, config=_benchmark_config(design, simplify=False)
        )
        events = list(session.iter_results())
        assert not any(
            isinstance(event, (ClassSimFalsified, ConeSimplified)) for event in events
        )

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="simplify"):
            DetectionConfig(simplify="yes")
        with pytest.raises(ConfigError, match="sim_patterns"):
            DetectionConfig(sim_patterns=0)
        with pytest.raises(ConfigError, match="fraig_rounds"):
            DetectionConfig(fraig_rounds=-1)
        with pytest.raises(ConfigError, match="sim_patterns"):
            DetectionConfig(sim_patterns=True)

    def test_report_schema_round_trips_preprocess_block(self):
        from repro.core.report import DetectionReport, SCHEMA_VERSION

        report = _audit("RS232-T2400")
        data = report.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["preprocess"]["sim_falsified"] > 0
        rebuilt = DetectionReport.from_dict(data)
        assert rebuilt.to_dict() == data
        assert "preprocess" not in normalized_report_dict(data)

    def test_cli_flags_reach_the_config(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(
            ["run", "--benchmark", "RS232-T2400", "--json", "--sim-patterns", "32"]
        )
        assert exit_code == 1  # trojan found
        import json as _json

        data = _json.loads(capsys.readouterr().out)
        assert data["preprocess"]["sim_falsified"] > 0

        exit_code = main(["run", "--benchmark", "RS232-T2400", "--json", "--no-simplify"])
        assert exit_code == 1
        data = _json.loads(capsys.readouterr().out)
        assert data["preprocess"]["sim_falsified"] == 0
