"""Cube-and-conquer benchmark: monolithic vs split solving of a hard class.

Audits ``benchmarks/cube_widget.v`` — the committed design whose class-1
obligation (a 6-bit multiplier-commutativity identity over a free pipeline
register) needs on the order of 2000 conflicts — once monolithically
(``--no-split`` semantics) and then with cube splitting at 1, 2 and 4
workers, and emits ``BENCH_cube.json`` with wall-clock times and cube
counts.  It also asserts the determinism contract the executor refactor is
built on: every configuration must produce the same verdict and the same
normalized (telemetry-stripped) report.

Usage::

    PYTHONPATH=src python benchmarks/bench_cube_split.py
    PYTHONPATH=src python benchmarks/bench_cube_split.py \
        --split-conflicts 200 --split-depth 2 --output BENCH_cube.json

This is a standalone artefact script (plain timings, one JSON document), not
a pytest-benchmark suite: its output feeds dashboards and CI trend lines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.api import Design, DetectionConfig, DetectionSession
from repro.exec import normalized_report_dict

WIDGET_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "cube_widget.v")

DEFAULT_JOB_COUNTS = (1, 2, 4)


def _audit(design: Design, config: DetectionConfig) -> Dict[str, object]:
    session = DetectionSession(design, config=config)
    started = time.perf_counter()
    report = session.run()
    elapsed = time.perf_counter() - started
    document = report.to_dict()
    split_outcomes = [o for o in document["outcomes"] if o["cubes"] > 1]
    return {
        "jobs": config.jobs,
        "split": config.split,
        "elapsed_s": elapsed,
        "verdict": document["verdict"],
        "classes_split": len(split_outcomes),
        "cubes": sum(o["cubes"] for o in split_outcomes),
        "solver_conflicts": document["solver"]["conflicts"],
        "normalized": normalized_report_dict(document),
    }


def run_benchmark(
    split_conflicts: int, split_depth: int, job_counts=DEFAULT_JOB_COUNTS
) -> Dict[str, object]:
    design = Design.from_file(WIDGET_PATH, top="cube_widget")
    runs: List[Dict[str, object]] = []

    monolithic = _audit(design, DetectionConfig(split=False))
    monolithic["phase"] = "monolithic"
    runs.append(monolithic)

    for jobs in job_counts:
        result = _audit(
            design,
            DetectionConfig(
                jobs=jobs,
                split=True,
                split_conflicts=split_conflicts,
                split_depth=split_depth,
            ),
        )
        result["phase"] = "split"
        runs.append(result)

    # Splitting must never change the audit's meaning, at any worker count.
    baseline = runs[0].pop("normalized")
    for run in runs[1:]:
        if run.pop("normalized") != baseline:
            raise AssertionError(
                f"normalized report of phase={run['phase']} jobs={run['jobs']} "
                "differs from the monolithic baseline"
            )
    for run in runs[1:]:
        if run["cubes"] < 2:
            raise AssertionError(
                f"split run at jobs={run['jobs']} did not split "
                f"(cubes={run['cubes']}): raise --split-conflicts headroom?"
            )

    baseline_elapsed = runs[0]["elapsed_s"]
    for run in runs:
        run["slowdown_vs_monolithic"] = (
            run["elapsed_s"] / baseline_elapsed if baseline_elapsed > 0 else None
        )
    return {
        "benchmark": "cube_split",
        "design": "cube_widget",
        "split_conflicts": split_conflicts,
        "split_depth": split_depth,
        "job_counts": list(job_counts),
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--split-conflicts", type=int, default=200, metavar="N",
        help="conflict budget that trips the split (default: 200, well "
             "below the widget's ~2000-conflict monolithic proof)",
    )
    parser.add_argument(
        "--split-depth", type=int, default=2, metavar="D",
        help="branching bits per split: 2^D cubes (default: 2)",
    )
    parser.add_argument(
        "--jobs",
        action="append",
        type=int,
        default=[],
        help="worker counts to measure (repeatable; default: 1 2 4)",
    )
    parser.add_argument(
        "--output", default="BENCH_cube.json", metavar="FILE",
        help="where to write the JSON document (default: BENCH_cube.json)",
    )
    args = parser.parse_args(argv)

    job_counts = tuple(args.jobs) or DEFAULT_JOB_COUNTS
    document = run_benchmark(args.split_conflicts, args.split_depth, job_counts)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for run in document["runs"]:
        print(
            f"{run['phase']:>10s} jobs={run['jobs']}: {run['elapsed_s']:.2f} s "
            f"(x{run['slowdown_vs_monolithic']:.2f} vs monolithic), "
            f"{run['classes_split']} class(es) split into {run['cubes']} cube(s), "
            f"{run['solver_conflicts']} conflicts"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
