// Cube-split exercise design: a 5-stage register pipeline feeding a
// multiplier-commutativity identity.
//
// The class proving `m` assumes only shallow registers equal, so the
// deep pipeline tail `r5` is a *free* leaf in the cone of m@t+1.  The
// obligation (r5*e)^(e*r5) == 0 cancels only functionally — structural
// hashing cannot fold the two operand orders at 6-bit width — so the
// first SAT attempt needs on the order of 2000 conflicts.  With
// --split-conflicts below that, the class aborts the monolithic solve
// and fans out into 2^split_depth cube tasks over free bits of r5.
//
// Audited with the default combinational mode this design is secure:
// every cube is UNSAT, so the reduced verdict must match a --no-split
// run byte-for-byte after normalization.
module cube_widget(
  input clk,
  input [5:0] a,
  input [5:0] b,
  output [11:0] o
);
  reg [5:0] r1;
  reg [5:0] r2;
  reg [5:0] r3;
  reg [5:0] r4;
  reg [5:0] r5;
  reg [5:0] e;
  reg [11:0] m;
  always @(posedge clk) begin
    r1 <= a;
    r2 <= r1;
    r3 <= r2;
    r4 <= r3;
    r5 <= r4;
    e <= b;
    m <= (r5 * e) ^ (e * r5);
  end
  assign o = m;
endmodule
