"""Experiment E7 — ablation: monolithic trojan property vs. decomposed flow.

Sec. V of the paper motivates decomposing the aggregate trojan property
(Fig. 3) into single-cycle init/fanout properties: the individual proofs stay
small and their runtime is bounded by the structural, not the sequential,
depth of the design.  This ablation quantifies that claim on this
reproduction by proving the same obligations both ways while sweeping the
covered depth.

Run with:  pytest benchmarks/bench_decomposition_ablation.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from conftest import design_config
from repro.core import TrojanDetectionFlow
from repro.core.properties import build_fanout_property, build_init_property, build_trojan_property
from repro.ipc.engine import IpcEngine
from repro.trusthub import load_design, load_module


def _decomposed_runtime(module, flow, max_class):
    """Check the init property and fanout properties up to ``max_class``."""
    started = time.perf_counter()
    engine = IpcEngine(module)
    properties = [build_init_property(module, flow.analysis, flow.config)]
    properties += [
        build_fanout_property(module, flow.analysis, k, flow.config)
        for k in range(1, max_class)
    ]
    for prop in properties:
        result = engine.check(prop)
        assert result.holds
    return time.perf_counter() - started


def _monolithic_runtime(module, flow, max_class):
    """Check the aggregate trojan property truncated at ``max_class``."""
    started = time.perf_counter()
    engine = IpcEngine(module)
    prop = build_trojan_property(module, flow.analysis, flow.config, max_class=max_class)
    result = engine.check(prop)
    assert result.holds
    return time.perf_counter() - started


DEPTHS = (2, 4, 8)


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("depth", DEPTHS)
def test_decomposed_properties_scale(benchmark, depth):
    design = load_design("AES-HT-FREE")
    module = load_module("AES-HT-FREE")
    flow = TrojanDetectionFlow(module, design_config(design))
    runtime = benchmark.pedantic(
        lambda: _decomposed_runtime(module, flow, depth), rounds=1, iterations=1
    )
    print(f"\ndecomposed properties, depth {depth}: {runtime:.2f} s")


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("depth", DEPTHS)
def test_monolithic_trojan_property_scales_worse(benchmark, depth):
    design = load_design("AES-HT-FREE")
    module = load_module("AES-HT-FREE")
    flow = TrojanDetectionFlow(module, design_config(design))
    runtime = benchmark.pedantic(
        lambda: _monolithic_runtime(module, flow, depth), rounds=1, iterations=1
    )
    print(f"\nmonolithic trojan property, depth {depth}: {runtime:.2f} s")


@pytest.mark.benchmark(group="ablation")
def test_ablation_summary(benchmark):
    """Side-by-side comparison at the deepest swept depth."""
    design = load_design("AES-HT-FREE")
    module = load_module("AES-HT-FREE")
    flow = TrojanDetectionFlow(module, design_config(design))

    def run():
        depth = DEPTHS[-1]
        return (
            _decomposed_runtime(module, flow, depth),
            _monolithic_runtime(module, flow, depth),
        )

    decomposed, monolithic = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nat depth {DEPTHS[-1]}: decomposed {decomposed:.2f} s vs monolithic {monolithic:.2f} s "
          f"({monolithic / max(decomposed, 1e-9):.1f}x)")
    # The monolithic property has to build the unrolled cone of every class,
    # so it cannot be cheaper than the decomposed set by construction; the
    # interesting quantity is the growth factor printed above.
    assert decomposed > 0 and monolithic > 0
