"""Supplementary experiment — scalability with pipeline depth (Sec. V claim).

The paper argues that the number of iterations of the detection flow — and
therefore its total effort — is bounded by the *structural* depth of the
design, not by the sequential depth of any Trojan trigger.  This benchmark
sweeps a synthetic non-interfering accelerator pipeline over increasing depth
and width and records the verification runtime, demonstrating the (roughly
linear) growth in structural depth and the complete independence from the
trigger length of an embedded Trojan.

Run with:  pytest benchmarks/bench_scalability.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core import DetectionConfig, detect_trojans
from repro.rtl import elaborate_source


def synthetic_pipeline(depth: int, width: int = 16, trojan_counter_bits: int = 0) -> str:
    """A ``depth``-stage feed-forward accelerator, optionally Trojan-infested.

    Each stage mixes the previous stage with a stage-specific constant; the
    optional Trojan flips the output once a free-running counter of
    ``trojan_counter_bits`` bits overflows (its trigger length is therefore
    ``2 ** trojan_counter_bits`` cycles — irrelevant to the formal flow).
    """
    lines = [
        "module synth(",
        "  input clk,",
        f"  input  [{width - 1}:0] din,",
        f"  output [{width - 1}:0] dout",
        ");",
    ]
    for stage in range(1, depth + 1):
        lines.append(f"  reg [{width - 1}:0] s{stage};")
    lines.append("  always @(posedge clk) begin")
    lines.append(f"    s1 <= din ^ {width}'d{0x1234 & ((1 << width) - 1)};")
    for stage in range(2, depth + 1):
        constant = (0x9E37 * stage) & ((1 << width) - 1)
        lines.append(f"    s{stage} <= s{stage - 1} + {width}'d{constant};")
    if trojan_counter_bits:
        lines.append(f"    tj_count <= tj_count + {trojan_counter_bits}'d1;")
    lines.append("  end")
    if trojan_counter_bits:
        lines.insert(5, f"  reg [{trojan_counter_bits - 1}:0] tj_count;")
        lines.append(
            f"  assign dout = (tj_count == {{{trojan_counter_bits}{{1'b1}}}}) ? ~s{depth} : s{depth};"
        )
    else:
        lines.append(f"  assign dout = s{depth};")
    lines.append("endmodule")
    return "\n".join(lines)


DEPTHS = (8, 16, 32, 64)


@pytest.mark.benchmark(group="scalability-depth")
@pytest.mark.parametrize("depth", DEPTHS)
def test_runtime_scales_with_structural_depth(benchmark, depth):
    module = elaborate_source(synthetic_pipeline(depth), "synth")
    report = benchmark.pedantic(lambda: detect_trojans(module), rounds=1, iterations=1)
    assert report.is_secure
    assert report.properties_checked() == depth
    print(f"\ndepth {depth}: {report.properties_checked()} properties, "
          f"total {report.total_runtime_seconds:.2f} s")


@pytest.mark.benchmark(group="scalability-trigger")
@pytest.mark.parametrize("trigger_bits", (8, 16, 32, 48))
def test_runtime_independent_of_trigger_length(benchmark, trigger_bits):
    """Detection effort must not depend on how long the Trojan's trigger takes."""
    module = elaborate_source(synthetic_pipeline(12, trojan_counter_bits=trigger_bits), "synth")
    report = benchmark.pedantic(
        lambda: detect_trojans(module, DetectionConfig()), rounds=1, iterations=1
    )
    assert report.trojan_detected
    print(f"\ntrigger length 2^{trigger_bits} cycles: detected by {report.detected_by}, "
          f"total {report.total_runtime_seconds:.2f} s")
