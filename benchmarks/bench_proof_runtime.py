"""Experiment E3 — per-property proof runtime and memory (Sec. VI).

The paper reports that each individual init/fanout property proof completes
within 1-3 seconds and under 1 GB of memory on the commercial property
checker.  These benchmarks measure the same quantities for this
reproduction's IPC engine: the runtime of a single property proof on the
largest design (the pipelined AES-128 core) and the peak Python heap of a
full detection run.

Run with:  pytest benchmarks/bench_proof_runtime.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import design_config, run_detection
from repro.core import TrojanDetectionFlow
from repro.core.properties import build_fanout_property, build_init_property
from repro.trusthub import load_design, load_module
from repro.utils.timing import PeakMemoryTracker


@pytest.mark.benchmark(group="proof-runtime")
def test_single_init_property_proof_on_aes(benchmark):
    """Runtime of one init-property proof on the AES core (paper: 1-3 s)."""
    design = load_design("AES-HT-FREE")
    module = load_module("AES-HT-FREE")
    flow = TrojanDetectionFlow(module, design_config(design))
    prop = build_init_property(module, flow.analysis, flow.config)

    result = benchmark(lambda: flow.engine.check(prop))
    assert result.holds


@pytest.mark.benchmark(group="proof-runtime")
def test_single_deep_fanout_property_proof_on_aes(benchmark):
    """Runtime of the deepest fanout-property proof (ciphertext class) on the AES core."""
    design = load_design("AES-HT-FREE")
    module = load_module("AES-HT-FREE")
    flow = TrojanDetectionFlow(module, design_config(design))
    deepest = flow.analysis.placement_depth - 1
    prop = build_fanout_property(module, flow.analysis, deepest, flow.config)

    result = benchmark(lambda: flow.engine.check(prop))
    assert result.holds


@pytest.mark.benchmark(group="proof-runtime")
def test_per_property_runtime_distribution(benchmark):
    """Distribution of all per-property runtimes of a full AES verification."""

    def run():
        return run_detection("AES-HT-FREE")[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    runtimes = sorted(report.property_runtimes().values())
    print(f"\nper-property proof runtime over {len(runtimes)} properties:"
          f" min {runtimes[0]:.3f} s, median {runtimes[len(runtimes) // 2]:.3f} s,"
          f" max {runtimes[-1]:.3f} s (paper: 1-3 s per property)")
    assert runtimes[-1] < 10.0


@pytest.mark.benchmark(group="proof-memory")
def test_peak_memory_of_full_detection_run(benchmark):
    """Peak Python heap of a complete AES verification (paper: < 1 GB)."""

    def run():
        with PeakMemoryTracker() as tracker:
            _, report = run_detection("AES-HT-FREE")
        return tracker, report

    tracker, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npeak heap during the full AES run: {tracker.peak_megabytes:.0f} MB (paper: < 1024 MB)")
    assert report.is_secure
    assert tracker.peak_megabytes < 1024
