"""Experiments E4-E6 — the worked examples of Sec. VI.

* E4 (Fig. 6): AES-T1400 — 4-state plaintext-sequence FSM trigger, power-
  side-channel shift-register payload, detected by a failed init property
  whose counterexample shows differing shift registers / trigger state.
* E5 (Fig. 7): AES-T2500 — cycle-counter trigger, ciphertext-LSB-flip
  payload, detected by fanout property 21 with the difference visible in the
  ciphertext LSB.
* E6: RS232-T2400 — the additional UART case study, detected by a failed
  fanout property after the legitimate cross-frame control state has been
  waived (the paper resolves three spurious counterexamples there).

Run with:  pytest benchmarks/bench_case_studies.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import run_detection
from repro.trusthub import load_design


@pytest.mark.benchmark(group="case-studies")
def test_aes_t1400_fig6(benchmark):
    def run():
        return run_detection("AES-T1400")[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.detected_by == "init property"
    cex = report.counterexample
    assert cex is not None
    differing = set(cex.signals_with_difference())
    # The CEX pinpoints the trojan state: the sequence FSM and/or the
    # payload shift register differ between the two instances.
    assert differing & {"tj_seq_state", "tj_psc_shift"}
    print(f"\nAES-T1400: detected by {report.detected_by}; differing signals: {sorted(differing)}")


@pytest.mark.benchmark(group="case-studies")
def test_aes_t2500_fig7(benchmark):
    def run():
        return run_detection("AES-T2500")[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.detected_by == "fanout property 21"
    cex = report.counterexample
    assert cex is not None
    out_difference = next(
        (entry for entry in cex.failing_signals if entry[0] == "out"), None
    )
    assert out_difference is not None
    _, _, value_a, value_b = out_difference
    assert (value_a ^ value_b) == 0x1, "the difference must be exactly the ciphertext LSB"
    print(f"\nAES-T2500: detected by {report.detected_by}; ciphertext difference mask "
          f"0x{value_a ^ value_b:x} (paper: LSB flip, fanout property 21)")


@pytest.mark.benchmark(group="case-studies")
def test_rs232_t2400_case_study(benchmark):
    design = load_design("RS232-T2400")

    def run():
        return run_detection("RS232-T2400")[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.trojan_detected
    assert report.detected_by.startswith("fanout property")
    print(f"\nRS232-T2400: detected by {report.detected_by} after waiving "
          f"{len(design.recommended_waivers)} legitimate control registers "
          f"(paper: failed fanout property, 3 spurious CEXs resolved)")
