"""Performance-regression gate over the committed simplify artefact.

Compares a freshly generated ``BENCH_simplify.json`` against the committed
baseline and fails (exit 1) when solver work regresses past a tolerance:

* **trojan conflict floor** — total CDCL conflicts the simplify-on
  configuration spends across the trojan-positive benchmarks.  The flow's
  headline performance claim is that tampered cones are falsified by
  simulation before the solver sees them, so this number must not creep up.
* **minimized conflict count** — conflicts of the stock CDCL configuration
  on the bundled hard check (``solver_internals.minimize``), guarding the
  conflict-clause-minimization and clause-management work inside the solver.

Conflict counts are deterministic for a given code state (fixed seeds, no
timing dependence), so the default tolerance only absorbs intentional small
drifts; genuine regressions show up as hard failures in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_simplify.py --output fresh.json
    PYTHONPATH=src python benchmarks/perf_gate.py \
        --fresh fresh.json --baseline BENCH_simplify.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

#: Allowed relative growth of a gated counter before the gate fails.
DEFAULT_TOLERANCE = 0.10

#: Allowed absolute growth — keeps tiny baselines (a handful of conflicts)
#: from failing on a one-conflict drift that the relative bound cannot absorb.
DEFAULT_SLACK = 5


def _load(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _gate(
    label: str,
    fresh: int,
    baseline: int,
    tolerance: float,
    slack: int,
    failures: List[str],
) -> None:
    ceiling = max(int(baseline * (1.0 + tolerance)), baseline + slack)
    verdict = "ok" if fresh <= ceiling else "REGRESSION"
    print(f"{label:28s} fresh {fresh:6d}  baseline {baseline:6d}  ceiling {ceiling:6d}  {verdict}")
    if fresh > ceiling:
        failures.append(
            f"{label}: {fresh} conflicts vs committed floor {baseline} "
            f"(ceiling {ceiling})"
        )


def _minimize_conflicts(document: Dict[str, object]) -> Optional[int]:
    internals = document.get("solver_internals")
    if not isinstance(internals, dict):
        return None
    minimize = internals.get("minimize")
    if not isinstance(minimize, dict):
        return None
    return int(minimize["conflicts"])


def run_gate(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    slack: int = DEFAULT_SLACK,
) -> List[str]:
    """All regression messages (empty = gate passes)."""
    failures: List[str] = []
    _gate(
        "trojan conflicts (simplify)",
        int(fresh["trojan_conflicts"]["on"]),
        int(baseline["trojan_conflicts"]["on"]),
        tolerance,
        slack,
        failures,
    )
    fresh_min = _minimize_conflicts(fresh)
    baseline_min = _minimize_conflicts(baseline)
    if fresh_min is not None and baseline_min is not None:
        _gate(
            "hard-check conflicts (CDCL)",
            fresh_min,
            baseline_min,
            tolerance,
            slack,
            failures,
        )
    elif baseline_min is None:
        # A baseline predating the solver_internals section gates only the
        # trojan floor; the next committed refresh picks up the second gate.
        print("note: baseline has no solver_internals section; CDCL gate skipped")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, metavar="FILE",
        help="freshly generated BENCH_simplify.json",
    )
    parser.add_argument(
        "--baseline", default="BENCH_simplify.json", metavar="FILE",
        help="committed baseline document (default: BENCH_simplify.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="FRAC",
        help=f"allowed relative conflict growth (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--slack", type=int, default=DEFAULT_SLACK, metavar="N",
        help=f"allowed absolute conflict growth (default: {DEFAULT_SLACK})",
    )
    args = parser.parse_args(argv)

    failures = run_gate(
        _load(args.fresh), _load(args.baseline), args.tolerance, args.slack
    )
    if failures:
        for failure in failures:
            print(f"perf gate FAILED: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
