"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation section
(see DESIGN.md, *Experiment index*).  The helpers below cache elaborated
modules per session so that the pytest-benchmark timings measure the
verification effort, not repeated elaboration.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DetectionConfig, Waiver, detect_trojans  # noqa: E402
from repro.trusthub import load_design, load_module  # noqa: E402


def design_config(design, with_waivers: bool = True) -> DetectionConfig:
    """The configuration a verification engineer would use for this benchmark.

    Preprocessing is disabled here on purpose: these harnesses pin the
    behaviour of the incremental *solving core* (clause reuse, per-check CNF
    growth, SAT runtimes), which sim-first falsification would short-circuit
    — the preprocessing pipeline has its own artefact script,
    ``benchmarks/bench_simplify.py``.
    """
    waivers = []
    if with_waivers:
        waivers = [Waiver(signal, "legitimate control state") for signal in design.recommended_waivers]
    return DetectionConfig(
        inputs=list(design.data_inputs), waivers=waivers, simplify=False
    )


def run_detection(name: str, with_waivers: bool = True):
    """Run the full Algorithm-1 flow on one catalogued benchmark."""
    design = load_design(name)
    module = load_module(name)
    return design, detect_trojans(module, design_config(design, with_waivers))


@pytest.fixture(scope="session")
def table1_results():
    """Cache of detection reports shared by the Table I benchmarks."""
    return {}
