"""Sequential-mode depth-scaling benchmark: solve time vs unrolling bound.

Unrolls the sequential trojan benchmarks against their golden models at a
range of depths and measures the bounded divergence check two ways:

* **incremental** — one persistent :class:`SequentialUnroller` checked at
  every depth in order, reusing frames, Tseitin clauses and solver state
  (what the detection flow's per-worker unroller affinity does), and
* **fresh** — a brand-new unroller (and solver) per depth, the cost a
  non-incremental implementation would pay.

Emits ``BENCH_sequential.json`` with per-depth wall-clock times, clause
reuse accounting, the detection outcome at each bound, and the incremental
speedup over the fresh-solver baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_sequential_depth.py
    PYTHONPATH=src python benchmarks/bench_sequential_depth.py \
        --benchmark RS232-SEQ-T3000 --depth 4 --depth 8 --depth 12

This is a standalone artefact script (plain timings, one JSON document), not
a pytest-benchmark suite like its siblings: its output feeds dashboards and
CI trend lines rather than statistical micro-comparisons.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.core import SequentialUnroller
from repro.trusthub import load_design

DEFAULT_BENCHMARKS = ("RS232-SEQ-T3000", "AES-SEQ-T3000")
DEFAULT_DEPTHS = (2, 4, 6, 8)


def _check_at(unroller: SequentialUnroller, depth: int) -> Dict[str, object]:
    started = time.perf_counter()
    result = unroller.check_outputs(unroller.common_outputs, depth)
    return {
        "depth": depth,
        "elapsed_s": time.perf_counter() - started,
        "detected": not result.holds,
        "first_divergence_cycle": result.first_divergence_cycle,
        "cnf_new_clauses": result.cnf_new_clauses,
        "cnf_reused_clauses": result.cnf_reused_clauses,
        "sat_conflicts": result.sat_conflicts,
    }


def bench_benchmark(name: str, depths: List[int]) -> Dict[str, object]:
    bench = load_design(name)
    design = bench.elaborate()
    golden = bench.elaborate_golden()

    incremental_runs: List[Dict[str, object]] = []
    shared = SequentialUnroller(design, golden)
    for depth in depths:
        incremental_runs.append(_check_at(shared, depth))

    fresh_runs: List[Dict[str, object]] = []
    for depth in depths:
        fresh_runs.append(_check_at(SequentialUnroller(design, golden), depth))

    incremental_total = sum(run["elapsed_s"] for run in incremental_runs)
    fresh_total = sum(run["elapsed_s"] for run in fresh_runs)
    return {
        "benchmark": name,
        "golden_top": bench.golden_top,
        "depths": list(depths),
        "incremental": incremental_runs,
        "fresh_solver": fresh_runs,
        "incremental_total_s": incremental_total,
        "fresh_total_s": fresh_total,
        "incremental_speedup": (fresh_total / incremental_total)
        if incremental_total > 0
        else None,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmark", action="append", default=[], metavar="NAME",
        help=f"sequential benchmark(s) to unroll (default: {', '.join(DEFAULT_BENCHMARKS)})",
    )
    parser.add_argument(
        "--depth", action="append", type=int, default=[], metavar="K",
        help=f"unrolling bound(s) to measure (default: {DEFAULT_DEPTHS})",
    )
    parser.add_argument(
        "--output", default="BENCH_sequential.json", metavar="FILE",
        help="where to write the JSON artefact (default: BENCH_sequential.json)",
    )
    args = parser.parse_args(argv)

    benchmarks = args.benchmark or list(DEFAULT_BENCHMARKS)
    depths = sorted(set(args.depth)) or list(DEFAULT_DEPTHS)

    results = [bench_benchmark(name, depths) for name in benchmarks]
    document = {
        "benchmark": "sequential_depth_scaling",
        "depths": depths,
        "results": results,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for entry in results:
        detected_at = next(
            (run["depth"] for run in entry["incremental"] if run["detected"]), None
        )
        speedup = entry["incremental_speedup"]
        speedup_note = f"{speedup:.2f}x" if speedup is not None else "n/a"
        print(
            f"{entry['benchmark']:18s} detected at depth {detected_at}  "
            f"incremental {entry['incremental_total_s']:.2f}s vs fresh "
            f"{entry['fresh_total_s']:.2f}s (speedup {speedup_note})"
        )
    print(f"artefact written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
