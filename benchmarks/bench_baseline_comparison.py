"""Experiment E8 — comparison against the baseline techniques of Sec. II.

The paper positions its method against verification-test-based detection
(random simulation, UCI), structural heuristics (FANCI) and bounded formal
methods (BMC against a golden model): none of them is exhaustive for
sequential Trojans with long or improbable trigger sequences, and the formal
baselines additionally require a golden model.  These benchmarks make that
comparison concrete:

* the golden-free flow detects every selected Trojan,
* random simulation misses all of them (their triggers never fire),
* golden-model BMC finds a Trojan only when its trigger fits in the bound,
* UCI/FANCI flag suspicious logic but need test stimuli / thresholds and give
  no guarantee.

Run with:  pytest benchmarks/bench_baseline_comparison.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import run_detection
from repro.baselines import (
    BoundedTrojanChecker,
    FanciAnalysis,
    RandomSimulationTester,
    UnusedCircuitIdentification,
)
from repro.baselines.random_sim import aes_pipeline_golden
from repro.rtl import elaborate_source
from repro.trusthub import load_module
from repro.trusthub.aes_core import AES_LATENCY

# Small accelerator pair used for the BMC bound sweep (the full AES pair
# would only add constant factors without changing the picture).
_GOLDEN = """
module acc(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] s1; reg [7:0] s2;
  always @(posedge clk) begin s1 <= din + 8'h11; s2 <= s1 ^ 8'h22; end
  assign dout = s2;
endmodule
"""

_SHORT_TRIGGER = _GOLDEN.replace(
    "always @(posedge clk) begin s1 <= din + 8'h11; s2 <= s1 ^ 8'h22; end\n  assign dout = s2;",
    "reg [2:0] count;\n  always @(posedge clk) begin s1 <= din + 8'h11; s2 <= s1 ^ 8'h22;"
    " count <= count + 3'h1; end\n  assign dout = (count == 3'h7) ? ~s2 : s2;",
)

_LONG_TRIGGER = _GOLDEN.replace(
    "always @(posedge clk) begin s1 <= din + 8'h11; s2 <= s1 ^ 8'h22; end\n  assign dout = s2;",
    "reg [23:0] count;\n  always @(posedge clk) begin s1 <= din + 8'h11; s2 <= s1 ^ 8'h22;"
    " count <= count + 24'h1; end\n  assign dout = (count == 24'hffffff) ? ~s2 : s2;",
)


@pytest.mark.benchmark(group="baselines")
@pytest.mark.parametrize("name", ["AES-T1400", "AES-T2500", "AES-T2700"])
def test_formal_flow_detects_all_selected_trojans(benchmark, name):
    report = benchmark.pedantic(lambda: run_detection(name)[1], rounds=1, iterations=1)
    assert report.trojan_detected
    print(f"\n{name}: formal flow -> detected by {report.detected_by}")


@pytest.mark.benchmark(group="baselines")
@pytest.mark.parametrize("name", ["AES-T1400", "AES-T2700"])
def test_random_simulation_misses_stealthy_trojans(benchmark, name):
    module = load_module(name)
    tester = RandomSimulationTester(module, aes_pipeline_golden(AES_LATENCY), seed=11)

    result = benchmark.pedantic(lambda: tester.run(cycles=AES_LATENCY + 60), rounds=1, iterations=1)
    assert not result.trojan_detected
    print(f"\n{name}: random simulation -> {result.summary()} (Trojan missed)")


@pytest.mark.benchmark(group="baselines")
def test_bmc_finds_short_trigger_within_bound(benchmark):
    design = elaborate_source(_SHORT_TRIGGER, "acc")
    golden = elaborate_source(_GOLDEN, "acc")
    checker = BoundedTrojanChecker(design, golden)
    result = benchmark.pedantic(lambda: checker.check(bound=10), rounds=1, iterations=1)
    assert result.trojan_detected
    print(f"\nshort-trigger accelerator: BMC(bound=10) -> {result.summary()}")


@pytest.mark.benchmark(group="baselines")
def test_bmc_misses_long_trigger_within_bound(benchmark):
    design = elaborate_source(_LONG_TRIGGER, "acc")
    golden = elaborate_source(_GOLDEN, "acc")
    checker = BoundedTrojanChecker(design, golden)
    result = benchmark.pedantic(lambda: checker.check(bound=10), rounds=1, iterations=1)
    assert not result.trojan_detected
    print(f"\nlong-trigger accelerator: BMC(bound=10) -> {result.summary()} (Trojan missed; "
          "the golden-free flow detects the same design exhaustively)")


@pytest.mark.benchmark(group="baselines")
def test_uci_flags_dormant_trigger_logic(benchmark):
    design = elaborate_source(_LONG_TRIGGER, "acc")
    analysis = UnusedCircuitIdentification(design)
    stimuli = [{"din": (37 * i + 3) & 0xFF} for i in range(60)]
    result = benchmark.pedantic(lambda: analysis.analyze(stimuli), rounds=1, iterations=1)
    assert "count" in result.candidates
    print(f"\nlong-trigger accelerator: {result.summary()}")


@pytest.mark.benchmark(group="baselines")
def test_fanci_flags_wide_comparator(benchmark):
    design = elaborate_source(
        "module m(input clk, input [31:0] d, output q); reg armed;"
        " always @(posedge clk) if (d == 32'hcafebabe) armed <= 1'b1;"
        " assign q = armed; endmodule",
        "m",
    )
    analysis = FanciAnalysis(design, seed=3)
    result = benchmark.pedantic(lambda: analysis.analyze(samples=256, threshold=0.05), rounds=1, iterations=1)
    assert "armed" in result.flagged_signals()
    print(f"\nwide-comparator trigger: {result.summary()}")
