"""Simulation-guided simplification benchmark: simplify-on vs simplify-off.

Audits the RS232/AES trojan benchmarks (plus their HT-free controls) twice —
once with the default preprocessing pipeline (sim-first falsification +
fraig-style SAT sweeping, :mod:`repro.aig`) and once with ``simplify=False``
(every miter goes straight to Tseitin + CDCL) — and emits
``BENCH_simplify.json`` with per-benchmark wall-clock solve time, total CDCL
conflicts, solver calls and sim-falsification counts for both modes.

Two hard assertions make this an acceptance gate, not just a trend line:

* the *normalized* reports (verdicts, counterexamples, coverage — all
  performance telemetry stripped) of the two modes are identical, and equal
  to a ``--jobs 2`` run of the simplify-on configuration;
* over the trojan benchmarks, simplify-on spends strictly fewer total CDCL
  conflicts than simplify-off (the tampered cones are falsified by random
  simulation before the solver ever sees them).

The document also carries a ``solver_internals`` section: one bundled hard
UNSAT check (pigeonhole) solved by the stock CDCL configuration, by a
no-minimization solver, and by a tightly budgeted learned-clause database —
with hard assertions that conflict-clause minimization does not increase the
conflict count and that reduction actually deletes clauses while keeping the
live learned tier below everything ever learned.  ``benchmarks/perf_gate.py``
compares a freshly generated document against the committed one and fails CI
when the trojan conflict floor or the minimized conflict count regresses.

Usage::

    PYTHONPATH=src python benchmarks/bench_simplify.py
    PYTHONPATH=src python benchmarks/bench_simplify.py \
        --benchmark RS232-T2400 --benchmark AES-T100 --output BENCH_simplify.json

This is a standalone artefact script (plain timings, one JSON document), not
a pytest-benchmark suite like its siblings: its output feeds dashboards and
CI trend lines rather than statistical micro-comparisons.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import Dict, List

from repro.api import Design, DetectionConfig, DetectionSession, Waiver
from repro.exec import normalized_report_dict

DEFAULT_BENCHMARKS = (
    "RS232-HT-FREE",
    "RS232-T2400",
    "AES-HT-FREE",
    "AES-T100",
    "AES-T800",
    "AES-T1400",
    "AES-T1800",
)


def _design_config(design: Design, **overrides) -> DetectionConfig:
    """The benchmark's recommended configuration (what the CLI would build)."""
    waivers = [
        Waiver(signal=name, reason=f"recommended for {design.name}")
        for name in design.recommended_waivers
    ]
    config = DetectionConfig(
        inputs=list(design.data_inputs) or None, waivers=waivers
    )
    return replace(config, **overrides)


def _audit(name: str, **overrides) -> Dict[str, object]:
    design = Design.from_benchmark(name)
    session = DetectionSession(design, config=_design_config(design, **overrides))
    started = time.perf_counter()
    report = session.run()
    elapsed = time.perf_counter() - started
    return {
        "wall_s": elapsed,
        "verdict": report.verdict.value,
        "solver_conflicts": report.solver_conflicts,
        "solve_calls": report.solver_calls,
        "restarts": report.solver_restarts,
        "learned_clauses": report.solver_learned_clauses,
        "deleted_clauses": report.solver_deleted_clauses,
        "sim_falsified": report.preprocess_sim_falsified,
        "merged_nodes": report.preprocess_merged_nodes,
        "sweep_s": report.preprocess_sweep_s,
        "normalized": normalized_report_dict(report.to_dict()),
    }


def _pigeonhole_clauses(holes: int) -> List[List[int]]:
    """PH(holes): holes+1 pigeons in ``holes`` holes — classically hard UNSAT."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1
    clauses: List[List[int]] = [
        [var(p, h) for h in range(holes)] for p in range(pigeons)
    ]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def solver_internals_record(holes: int = 6) -> Dict[str, object]:
    """Minimization / learned-DB-reduction evidence on one hard check.

    Three solver configurations prove the same PH(``holes``) instance; the
    record exposes each one's conflicts, restarts and learned-clause
    economy.  Assertions gate the two claims the CDCL overhaul makes:
    minimization lowers (never raises) the conflict floor, and reduction
    bounds the live learned tier while provably deleting clauses.
    """
    from repro.sat import PythonCdclBackend

    clauses = _pigeonhole_clauses(holes)
    configurations = {
        "minimize": PythonCdclBackend(),
        "no_minimize": PythonCdclBackend(minimize=False),
        "bounded_db": PythonCdclBackend(reduce_base=100, reduce_increment=25),
    }
    record: Dict[str, object] = {"instance": f"pigeonhole-{holes}"}
    for label, backend in configurations.items():
        for clause in clauses:
            backend.add_clause(clause)
        started = time.perf_counter()
        result = backend.solve()
        if result.satisfiable:
            raise AssertionError(f"{label}: PH({holes}) must be UNSAT")
        record[label] = {
            "wall_s": time.perf_counter() - started,
            "conflicts": result.conflicts,
            "restarts": result.restarts,
            "learned_clauses": backend.total_learned_clauses,
            "deleted_clauses": backend.total_deleted_clauses,
            "live_learned_clauses": backend.solver.live_learned_clauses,
        }
    minimize, plain = record["minimize"], record["no_minimize"]
    if minimize["conflicts"] > plain["conflicts"]:
        raise AssertionError(
            f"conflict-clause minimization raised the PH({holes}) conflict "
            f"count: {minimize['conflicts']} vs {plain['conflicts']}"
        )
    bounded = record["bounded_db"]
    if bounded["deleted_clauses"] <= 0:
        raise AssertionError("learned-clause reduction never fired on the bounded DB")
    if bounded["live_learned_clauses"] >= bounded["learned_clauses"]:
        raise AssertionError(
            "reduction failed to bound the live learned tier: "
            f"{bounded['live_learned_clauses']} live of "
            f"{bounded['learned_clauses']} learned"
        )
    return record


def run_benchmark(benchmarks: List[str]) -> Dict[str, object]:
    per_benchmark: Dict[str, Dict[str, object]] = {}
    totals = {
        "on": {"wall_s": 0.0, "solver_conflicts": 0, "solve_calls": 0},
        "off": {"wall_s": 0.0, "solver_conflicts": 0, "solve_calls": 0},
    }
    trojan_conflicts = {"on": 0, "off": 0}
    trojan_wall = {"on": 0.0, "off": 0.0}
    for name in benchmarks:
        on = _audit(name)
        off = _audit(name, simplify=False)
        jobs2 = _audit(name, jobs=2)
        normalized = on.pop("normalized")
        if off.pop("normalized") != normalized:
            raise AssertionError(
                f"{name}: simplify-on and simplify-off normalized reports differ"
            )
        if jobs2.pop("normalized") != normalized:
            raise AssertionError(
                f"{name}: --jobs 1 and --jobs 2 normalized reports differ"
            )
        entry: Dict[str, object] = {
            "simplify_on": on,
            "simplify_off": off,
            "jobs2_wall_s": jobs2["wall_s"],
            "conflict_reduction": off["solver_conflicts"] - on["solver_conflicts"],
            "speedup": (off["wall_s"] / on["wall_s"]) if on["wall_s"] > 0 else None,
        }
        per_benchmark[name] = entry
        for mode, run in (("on", on), ("off", off)):
            totals[mode]["wall_s"] += run["wall_s"]
            totals[mode]["solver_conflicts"] += run["solver_conflicts"]
            totals[mode]["solve_calls"] += run["solve_calls"]
        if on["verdict"] != "secure":
            for mode, run in (("on", on), ("off", off)):
                trojan_conflicts[mode] += run["solver_conflicts"]
                trojan_wall[mode] += run["wall_s"]

    if trojan_conflicts["off"] == 0:
        print("note: no trojan-positive benchmark audited; conflict-reduction gate skipped")
    elif trojan_conflicts["on"] >= trojan_conflicts["off"]:
        raise AssertionError(
            f"simplify-on did not reduce CDCL conflicts on the trojan "
            f"benchmarks: {trojan_conflicts['on']} vs {trojan_conflicts['off']}"
        )
    return {
        "benchmark": "simplify",
        "benchmarks_audited": list(benchmarks),
        "per_benchmark": per_benchmark,
        "totals": totals,
        "trojan_conflicts": trojan_conflicts,
        "trojan_wall_s": trojan_wall,
        "trojan_speedup": (
            trojan_wall["off"] / trojan_wall["on"] if trojan_wall["on"] > 0 else None
        ),
        "solver_internals": solver_internals_record(),
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmark",
        action="append",
        default=[],
        metavar="NAME",
        help="benchmark to audit (repeatable; default: RS232/AES set)",
    )
    parser.add_argument(
        "--output", default="BENCH_simplify.json", metavar="FILE",
        help="where to write the JSON document (default: BENCH_simplify.json)",
    )
    args = parser.parse_args(argv)

    benchmarks = args.benchmark or list(DEFAULT_BENCHMARKS)
    document = run_benchmark(benchmarks)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, entry in document["per_benchmark"].items():
        on, off = entry["simplify_on"], entry["simplify_off"]
        print(
            f"{name:16s} on: {on['wall_s']:.2f} s / {on['solver_conflicts']} cfl"
            f" ({on['sim_falsified']} sim-falsified)   "
            f"off: {off['wall_s']:.2f} s / {off['solver_conflicts']} cfl"
        )
    internals = document["solver_internals"]
    print(
        f"{internals['instance']}: {internals['minimize']['conflicts']} cfl "
        f"minimized vs {internals['no_minimize']['conflicts']} plain; "
        f"bounded DB kept {internals['bounded_db']['live_learned_clauses']} of "
        f"{internals['bounded_db']['learned_clauses']} learned "
        f"({internals['bounded_db']['deleted_clauses']} deleted)"
    )
    speedup = document["trojan_speedup"]
    print(
        f"trojan totals: {document['trojan_conflicts']['on']} vs "
        f"{document['trojan_conflicts']['off']} conflicts, "
        f"{document['trojan_wall_s']['on']:.2f} s vs "
        f"{document['trojan_wall_s']['off']:.2f} s"
        + (f" (speedup x{speedup:.2f})" if speedup is not None else "")
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
