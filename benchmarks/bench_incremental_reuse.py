"""Regression guard for the incremental solving core (persistent CNF/SAT).

Before the incremental refactor, every ``IpcEngine.check()`` call re-ran the
Tseitin conversion of the shared AIG cone and re-learned every clause from a
cold SAT solver.  These benchmarks pin down the reuse the refactor buys on a
real TrustHub-style design: the AES cone is encoded into CNF at most once,
and the second and later property checks feed strictly fewer newly-added
clauses to the persistent solver context than the first.

Run with:  pytest benchmarks/bench_incremental_reuse.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import design_config
from repro.core import TrojanDetectionFlow
from repro.core.properties import build_init_property
from repro.trusthub import load_design, load_module


AES_TROJAN = "AES-T100"


def _sat_backed_checks(flow, rounds=3):
    """Run ``rounds`` successive SAT-backed init-property checks on one engine."""
    results = []
    for _ in range(rounds):
        prop = build_init_property(flow.module, flow.analysis, flow.config)
        results.append(flow.engine.check(prop))
    return results


@pytest.mark.benchmark(group="incremental-reuse")
def test_second_check_encodes_strictly_less(benchmark):
    """Per-check CNF growth shrinks after the first property (the tentpole)."""
    design = load_design(AES_TROJAN)
    module = load_module(AES_TROJAN)

    def run():
        flow = TrojanDetectionFlow(module, design_config(design))
        return _sat_backed_checks(flow)

    first, second, third = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every check hits SAT (the init property fails on the trojaned design) …
    assert not first.holds and not second.holds and not third.holds
    assert first.solver_calls == second.solver_calls == third.solver_calls == 1
    # … but the shared AES cone is only encoded once: later checks add far
    # fewer clauses (only the rebuilt non-persistent instance and the miter).
    assert second.cnf_new_clauses < first.cnf_new_clauses
    assert third.cnf_new_clauses < first.cnf_new_clauses
    # And what the first check encoded is reused, never re-fed to the solver.
    assert second.cnf_reused_clauses >= first.cnf_new_clauses
    assert third.cnf_reused_clauses >= second.cnf_reused_clauses
    print(
        f"\nper-check new clauses: {first.cnf_new_clauses} -> "
        f"{second.cnf_new_clauses} -> {third.cnf_new_clauses} "
        f"(reused by check 3: {third.cnf_reused_clauses})"
    )


@pytest.mark.benchmark(group="incremental-reuse")
def test_full_multiclass_flow_reports_reuse_stats(benchmark):
    """The multi-class AES flow surfaces solver-context statistics."""
    design = load_design(AES_TROJAN)
    module = load_module(AES_TROJAN)

    def run():
        flow = TrojanDetectionFlow(module, design_config(design))
        return flow.run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.trojan_detected
    assert report.detected_by == design.expected_detection
    assert report.solver_backend
    assert report.solver_calls >= 1
    stats = report.solver_stats()
    # The run's persistent context encodes the shared AES cone; the failing
    # class's *outcome* telemetry comes from the canonical witness settle on
    # a fresh context (which random simulation may satisfy without encoding
    # anything), so the per-outcome sum is a lower bound, not an identity.
    assert stats["clauses_encoded"] >= stats["clauses_new"]
    assert stats["clauses_encoded"] >= 1
    print(f"\nflow solver stats: {stats} (backend {report.solver_backend})")


_BMC_TROJAN = """
module acc(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] stage; reg [3:0] count;
  always @(posedge clk) begin
    stage <= din + 8'h11;
    count <= (din == 8'ha5) ? (count + 4'h1) : count;
  end
  assign dout = (count == 4'h3) ? (stage ^ 8'h22) : stage;
endmodule
"""

_BMC_GOLDEN = """
module acc_gold(input clk, input [7:0] din, output [7:0] dout);
  reg [7:0] stage;
  always @(posedge clk) stage <= din + 8'h11;
  assign dout = stage;
endmodule
"""


@pytest.mark.benchmark(group="incremental-reuse")
def test_bmc_depth_k_plus_1_reuses_depth_k_clauses(benchmark):
    """The BMC baseline reuses the unrolling clauses of earlier bounds."""
    from repro.baselines import BoundedTrojanChecker
    from repro.rtl import elaborate_source

    dut = elaborate_source(_BMC_TROJAN, "acc")
    golden = elaborate_source(_BMC_GOLDEN, "acc_gold")

    def run():
        checker = BoundedTrojanChecker(dut, golden)
        shallow = checker.check(bound=2)
        deeper = checker.check(bound=6)
        fresh = BoundedTrojanChecker(dut, golden).check(bound=6)
        return shallow, deeper, fresh

    shallow, deeper, fresh = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not shallow.trojan_detected
    assert deeper.trojan_detected and fresh.trojan_detected
    # The trigger needs three matching inputs, so no divergence before cycle 3
    # (the exact failing cycle depends on the satisfying assignment found).
    assert deeper.failing_cycle >= 3 and fresh.failing_cycle >= 3
    # Depth 6 reuses everything depth 2 encoded; a cold checker must pay the
    # whole encoding again.
    assert deeper.cnf_reused_clauses >= shallow.cnf_new_clauses > 0
    assert deeper.cnf_new_clauses < fresh.cnf_new_clauses
    assert shallow.cnf_new_clauses + deeper.cnf_new_clauses <= fresh.cnf_new_clauses
    print(
        f"\nBMC clauses: bound 2 adds {shallow.cnf_new_clauses}, bound 6 adds "
        f"{deeper.cnf_new_clauses} (reuses {deeper.cnf_reused_clauses}); "
        f"cold bound-6 checker encodes {fresh.cnf_new_clauses}"
    )
