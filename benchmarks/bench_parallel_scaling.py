"""Parallel-scaling and warm-cache benchmark of the execution subsystem.

Audits a set of bundled Trust-Hub-style benchmarks four ways — cold at 1, 2
and 4 workers, then a warm-cache rerun — and emits ``BENCH_parallel.json``
with wall-clock times, speedups over the serial baseline, and cache-hit
accounting.  It also asserts that every configuration produces the same
normalized (telemetry-stripped) batch report, i.e. that parallelism and
caching never change a verdict.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --family RS232 --family BasicRSA --output BENCH_parallel.json

This is a standalone artefact script (plain timings, one JSON document), not
a pytest-benchmark suite like its siblings: its output feeds dashboards and
CI trend lines rather than statistical micro-comparisons.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.api import BatchSession, DetectionConfig
from repro.exec import normalized_batch_report_dict
from repro.trusthub import design_names

DEFAULT_JOB_COUNTS = (1, 2, 4)


def _select_benchmarks(families: List[str]) -> List[str]:
    if not families:
        return design_names()
    names: List[str] = []
    for family in families:
        names.extend(design_names(family=family))
    return names


def _audit(
    benchmarks: List[str], jobs: int, cache_dir: Optional[str]
) -> Dict[str, object]:
    config = DetectionConfig(jobs=jobs, cache_dir=cache_dir)
    batch = BatchSession(benchmarks, config=config)
    started = time.perf_counter()
    report = batch.run()
    elapsed = time.perf_counter() - started
    cache = report.cache_stats()
    return {
        "jobs": jobs,
        "elapsed_s": elapsed,
        "designs": report.designs_audited,
        "verdicts": report.verdict_counts(),
        "cache_hits": cache["cache_hits"],
        "cache_misses": cache["cache_misses"],
        "normalized": normalized_batch_report_dict(report.to_dict()),
    }


def run_benchmark(
    benchmarks: List[str], job_counts=DEFAULT_JOB_COUNTS
) -> Dict[str, object]:
    runs: List[Dict[str, object]] = []
    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        # Cold runs at each worker count: each gets a pristine cache dir so
        # no run warms another.
        for jobs in job_counts:
            cold_dir = f"{cache_root}/cold-{jobs}"
            result = _audit(benchmarks, jobs, cold_dir)
            result["phase"] = "cold"
            runs.append(result)
        # Warm rerun: reuse the cache of the first (baseline) cold run.
        baseline_jobs = job_counts[0]
        warm = _audit(benchmarks, baseline_jobs, f"{cache_root}/cold-{baseline_jobs}")
        warm["phase"] = "warm"
        runs.append(warm)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    # Parallelism and caching must never change the audit's meaning.
    baseline = runs[0].pop("normalized")
    for run in runs[1:]:
        if run.pop("normalized") != baseline:
            raise AssertionError(
                f"normalized batch report of phase={run['phase']} jobs={run['jobs']} "
                "differs from the serial baseline"
            )

    baseline_elapsed = runs[0]["elapsed_s"]
    for run in runs:
        run["speedup_vs_baseline"] = (
            baseline_elapsed / run["elapsed_s"] if run["elapsed_s"] > 0 else None
        )
    warm_run = runs[-1]
    if warm_run["cache_hits"] == 0:
        raise AssertionError("warm rerun reported zero cache hits")
    return {
        "benchmark": "parallel_scaling",
        "benchmarks_audited": benchmarks,
        "job_counts": list(job_counts),
        "baseline_jobs": job_counts[0],
        "runs": runs,
        "warm_speedup_vs_baseline": warm_run["speedup_vs_baseline"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--family",
        action="append",
        default=[],
        help="restrict to one benchmark family (repeatable); default: all",
    )
    parser.add_argument(
        "--output", default="BENCH_parallel.json", metavar="FILE",
        help="where to write the JSON document (default: BENCH_parallel.json)",
    )
    parser.add_argument(
        "--jobs",
        action="append",
        type=int,
        default=[],
        help="worker counts to measure (repeatable; default: 1 2 4)",
    )
    args = parser.parse_args(argv)

    benchmarks = _select_benchmarks(args.family)
    job_counts = tuple(args.jobs) or DEFAULT_JOB_COUNTS
    document = run_benchmark(benchmarks, job_counts)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for run in document["runs"]:
        print(
            f"{run['phase']:>4s} jobs={run['jobs']}: {run['elapsed_s']:.2f} s "
            f"(x{run['speedup_vs_baseline']:.2f} vs baseline), "
            f"cache {run['cache_hits']} hit(s) / {run['cache_misses']} miss(es)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
