"""Experiment E1 — Table I of the paper.

For every Trust-Hub-style Trojan benchmark, run the golden-free detection
flow and record (a) the detection outcome ("detected by" column of Table I)
and (b) the verification runtime.  The final collector test prints the full
reproduced table so the run output can be compared against the paper row by
row.

Run with:  pytest benchmarks/bench_table1.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import run_detection
from repro.trusthub import design_names, load_design


TROJAN_BENCHMARKS = (
    design_names(family="AES", with_trojan=True)
    + design_names(family="BasicRSA", with_trojan=True)
)


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("name", TROJAN_BENCHMARKS)
def test_table1_row(benchmark, name, table1_results):
    """One Table I row: the Trojan must be found by the expected property."""
    design = load_design(name)

    def run():
        return run_detection(name)[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    table1_results[name] = (design, report)

    assert report.trojan_detected, f"{name}: Trojan not detected"
    assert report.detected_by == design.expected_detection, (
        f"{name}: paper reports {design.expected_detection!r}, this run got {report.detected_by!r}"
    )


@pytest.mark.benchmark(group="table1")
def test_table1_report(benchmark, table1_results):
    """Aggregate: print the reproduced Table I (benchmark, payload, trigger, detected by)."""

    def collect():
        rows = []
        for name in TROJAN_BENCHMARKS:
            if name not in table1_results:
                design, report = run_detection(name)
                table1_results[name] = (design, report)
            design, report = table1_results[name]
            rows.append(
                (name, design.payload, design.trigger, report.detected_by, design.expected_detection)
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    header = f"{'Benchmark':16s} {'Payload':9s} {'Trigger':16s} {'Detected by':22s} {'Paper':22s}"
    print("\n" + header)
    print("-" * len(header))
    mismatches = 0
    for name, payload, trigger, detected_by, expected in rows:
        marker = "" if detected_by == expected else "  <-- differs"
        if detected_by != expected:
            mismatches += 1
        print(f"{name:16s} {payload:9s} {trigger:16s} {str(detected_by):22s} {expected:22s}{marker}")
    print(f"\n{len(rows)} Trojan benchmarks, {len(rows) - mismatches} matching the paper's Table I")
    assert mismatches == 0
