"""Experiment E2 — verification of the Trojan-free designs (Sec. VI).

The paper reports that every HT-free AES design is proven secure without any
spurious counterexample, and that the manually cleaned RSA designs needed two
spurious counterexamples to be resolved (the UART case study needed three).
These benchmarks reproduce that workflow: a first run without waivers shows
the counterexamples an engineer must review, a second run with the reviewed
waivers proves the designs secure.

Run with:  pytest benchmarks/bench_htfree.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from conftest import run_detection
from repro.trusthub import load_design


@pytest.mark.benchmark(group="ht-free")
def test_aes_ht_free_secure_without_waivers(benchmark):
    """HT-free AES: secure, no waivers, no spurious CEX (paper: same)."""
    design, report = None, None

    def run():
        nonlocal design, report
        design, report = run_detection("AES-HT-FREE", with_waivers=False)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.is_secure
    assert report.spurious_resolved == 0
    assert report.coverage is not None and report.coverage.complete
    print(f"\nAES-HT-FREE: {report.properties_checked()} properties, "
          f"max {report.max_property_runtime():.2f} s/property, "
          f"total {report.total_runtime_seconds:.2f} s, verdict {report.verdict.value}")


@pytest.mark.benchmark(group="ht-free")
def test_rsa_ht_free_requires_review_of_two_signals(benchmark):
    """HT-free BasicRSA: two legitimate history dependencies to review (paper: 2 spurious CEXs)."""

    def run():
        return run_detection("BasicRSA-HT-FREE", with_waivers=False)[1]

    raw_report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not raw_report.is_secure
    review = {cause.signal for cause in raw_report.diagnosis.causes}
    design = load_design("BasicRSA-HT-FREE")
    assert review <= set(design.recommended_waivers)
    print(f"\nBasicRSA-HT-FREE without waivers: flagged {sorted(review)} "
          f"(paper reports 2 spurious CEXs on the RSA designs)")


@pytest.mark.benchmark(group="ht-free")
def test_rsa_ht_free_secure_with_waivers(benchmark):
    def run():
        return run_detection("BasicRSA-HT-FREE", with_waivers=True)[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.is_secure
    print(f"\nBasicRSA-HT-FREE with 2 waivers: verdict {report.verdict.value}, "
          f"{report.properties_checked()} properties, total {report.total_runtime_seconds:.2f} s")


@pytest.mark.benchmark(group="ht-free")
def test_rs232_ht_free_secure_with_waivers(benchmark):
    def run():
        return run_detection("RS232-HT-FREE", with_waivers=True)[1]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.is_secure
    print(f"\nRS232-HT-FREE with waivers: verdict {report.verdict.value}")
