"""Unified benchmark runner: every harness in quick mode, one core artefact.

Runs a quick configuration of each benchmarks/bench_*.py harness and writes
a single top-level ``BENCH_core.json`` with one uniform record per
benchmark::

    { "<benchmark>": { "wall_s": float,
                       "solver_conflicts": int,
                       "solve_calls": int }, ... }

This is the repository's performance trajectory anchor: CI uploads the file
as an artefact on every run, so regressions in any subsystem (incremental
solving, parallel execution, sequential unrolling, simulation-guided
simplification) show up as a diff of one document instead of four.

The artefact-script harnesses (parallel scaling, sequential depth,
simplify) are invoked through their importable ``run_benchmark`` /
``bench_benchmark`` entry points with reduced workloads; the
pytest-benchmark suites are represented by their core scenario (a full
detection flow on the design the suite pins down), because their statistical
micro-measurements do not reduce to one number per benchmark.

``--repeat N`` runs every scenario N times and records the **median** wall
time (counters are deterministic across repeats, so they come from the
median run): single-shot wall clocks on shared CI runners are noisy enough
to drown small regressions, and the median is robust against one cold-cache
or noisy-neighbour outlier where the mean is not.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick
    PYTHONPATH=src python benchmarks/run_all.py --quick --repeat 3
    PYTHONPATH=src python benchmarks/run_all.py --output BENCH_core.json
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.api import BatchSession, Design, DetectionConfig, DetectionSession

_HERE = os.path.dirname(os.path.abspath(__file__))


def _load_harness(name: str):
    """Import a sibling bench_*.py harness by file path."""
    path = os.path.join(_HERE, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _flow_record(name: str, **overrides) -> Dict[str, object]:
    """One full detection flow, reduced to the uniform record."""
    design = Design.from_benchmark(name)
    # The recommended-waiver config builder lives in the simplify harness;
    # one definition of "what the CLI would build" for all runners.
    config = _load_harness("bench_simplify")._design_config(design, **overrides)
    started = time.perf_counter()
    report = DetectionSession(design, config=config).run()
    return {
        "wall_s": time.perf_counter() - started,
        "solver_conflicts": report.solver_conflicts,
        "solve_calls": report.solver_calls,
    }


# --------------------------------------------------------------------- #
# Scenarios (name -> (quick thunk, full thunk))
# --------------------------------------------------------------------- #


def _incremental_reuse(quick: bool) -> Dict[str, object]:
    # bench_incremental_reuse.py pins clause reuse of the *solving core* on
    # the AES-T100 flow; preprocessing is off, matching that harness (with
    # it on, random simulation falsifies the class before any CDCL call).
    return _flow_record("AES-T100", simplify=False)


def _proof_runtime(quick: bool) -> Dict[str, object]:
    # bench_proof_runtime.py measures per-property proof cost on the clean
    # AES core (every class proven, nothing short-circuits).
    return _flow_record("AES-HT-FREE", simplify=False)


def _parallel_scaling(quick: bool) -> Dict[str, object]:
    benchmarks = ["RS232-HT-FREE", "RS232-T2400"]
    if not quick:
        benchmarks.append("BasicRSA-HT-FREE")
    started = time.perf_counter()
    batch = BatchSession(benchmarks, config=DetectionConfig(jobs=2))
    report = batch.run()
    stats = report.solver_stats()
    return {
        "wall_s": time.perf_counter() - started,
        "solver_conflicts": stats["conflicts"],
        "solve_calls": stats["solver_calls"],
    }


def _sequential_depth(quick: bool) -> Dict[str, object]:
    harness = _load_harness("bench_sequential_depth")
    depths = [2, 4] if quick else [2, 4, 6, 8]
    started = time.perf_counter()
    result = harness.bench_benchmark("RS232-SEQ-T3000", depths)
    runs = result["incremental"] + result["fresh_solver"]
    return {
        "wall_s": time.perf_counter() - started,
        "solver_conflicts": sum(int(run["sat_conflicts"]) for run in runs),
        "solve_calls": sum(1 for run in runs if run["cnf_new_clauses"] or run["sat_conflicts"]),
    }


def _simplify(quick: bool) -> Dict[str, object]:
    harness = _load_harness("bench_simplify")
    benchmarks = (
        ["RS232-T2400", "AES-T100"]
        if quick
        else list(harness.DEFAULT_BENCHMARKS)
    )
    started = time.perf_counter()
    document = harness.run_benchmark(benchmarks)
    totals = document["totals"]
    return {
        "wall_s": time.perf_counter() - started,
        "solver_conflicts": int(totals["on"]["solver_conflicts"])
        + int(totals["off"]["solver_conflicts"]),
        "solve_calls": int(totals["on"]["solve_calls"])
        + int(totals["off"]["solve_calls"]),
    }


SCENARIOS: List[Tuple[str, Callable[[bool], Dict[str, object]]]] = [
    ("incremental_reuse", _incremental_reuse),
    ("proof_runtime", _proof_runtime),
    ("parallel_scaling", _parallel_scaling),
    ("sequential_depth", _sequential_depth),
    ("simplify", _simplify),
]


def run_all(quick: bool = True, repeat: int = 1) -> Dict[str, Dict[str, object]]:
    if repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {repeat}")
    document: Dict[str, Dict[str, object]] = {}
    for name, scenario in SCENARIOS:
        runs = [scenario(quick) for _ in range(repeat)]
        walls = sorted(float(run["wall_s"]) for run in runs)
        # The run whose wall time is the (lower) median represents the
        # scenario; its counters are deterministic across repeats anyway.
        median_wall = walls[(len(walls) - 1) // 2]
        record = next(run for run in runs if float(run["wall_s"]) == median_wall)
        document[name] = {
            "wall_s": statistics.median(walls),
            "solver_conflicts": int(record["solver_conflicts"]),
            "solve_calls": int(record["solve_calls"]),
        }
        spread = f" (n={repeat}, spread {walls[0]:.2f}-{walls[-1]:.2f} s)" if repeat > 1 else ""
        print(
            f"{name:20s} {document[name]['wall_s']:7.2f} s  "
            f"{document[name]['solver_conflicts']:6d} conflicts  "
            f"{document[name]['solve_calls']:4d} solver calls{spread}"
        )
    return document


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workloads for CI (smaller benchmark sets and depths)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="repeats per scenario; the recorded wall time is the median "
             "(default: 1)",
    )
    parser.add_argument(
        "--output", default="BENCH_core.json", metavar="FILE",
        help="where to write the unified JSON document (default: BENCH_core.json)",
    )
    args = parser.parse_args(argv)

    document = run_all(quick=args.quick, repeat=args.repeat)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
