#!/usr/bin/env python3
"""Quickstart: verify a small accelerator for sequential hardware Trojans.

The example builds a tiny two-stage arithmetic accelerator twice — once clean
and once with a counter-triggered Trojan that corrupts the result — and runs
the golden-free detection flow of the paper on both.  No golden model is
involved: the flow compares the design against a second instance of *itself*
under a symbolic starting state.

Run with:  python examples/quickstart.py
"""

from repro.api import Design, DetectionSession

CLEAN_ACCELERATOR = """
module mac_accel(
  input clk,
  input  [15:0] a,
  input  [15:0] b,
  output [31:0] result
);
  // A small two-stage multiply-accumulate pipeline: stage 1 registers the
  // partial product and the delayed operand, stage 2 registers the sum.
  reg [31:0] product_q;
  reg [15:0] a_q;
  reg [31:0] result_q;
  always @(posedge clk) begin
    product_q <= a * b;
    a_q       <= a;
    result_q  <= product_q + {16'h0, a_q};
  end
  assign result = result_q;
endmodule
"""

TROJANED_ACCELERATOR = """
module mac_accel(
  input clk,
  input  [15:0] a,
  input  [15:0] b,
  output [31:0] result
);
  reg [31:0] product_q;
  reg [15:0] a_q;
  reg [31:0] result_q;
  // Hardware trojan: a free-running counter flips the result LSB once in a
  // while -- a classic sequential Trojan with a time-based trigger.
  reg [23:0] evil_counter;
  always @(posedge clk) begin
    product_q    <= a * b;
    a_q          <= a;
    result_q     <= product_q + {16'h0, a_q};
    evil_counter <= evil_counter + 24'd1;
  end
  assign result = (evil_counter == 24'hffffff) ? (result_q ^ 32'h1) : result_q;
endmodule
"""


def run(title: str, source: str) -> None:
    print(f"=== {title} ===")
    design = Design.from_source(source, top="mac_accel", name=title)
    report = DetectionSession(design).run()
    print(report.summary())
    print()


def main() -> None:
    run("clean accelerator", CLEAN_ACCELERATOR)
    run("trojan-infested accelerator", TROJANED_ACCELERATOR)


if __name__ == "__main__":
    main()
