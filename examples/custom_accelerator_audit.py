#!/usr/bin/env python3
"""Audit a custom third-party accelerator IP, step by step.

This example walks through the session API a verification engineer would use
when a vendor delivers an unknown accelerator IP (here: a small SHA-like
compression pipeline with an intentionally hidden Trojan):

1. load the RTL as a :class:`repro.api.Design` and inspect the structural
   fanout classes,
2. build and inspect the individual init/fanout properties,
3. run the flow *streaming* — typed run events arrive per property class
   while the SAT phase is still executing,
4. decide between waiving a legitimate dependency and reporting a Trojan,
5. compare against the dynamic-testing baseline, which misses the Trojan.

Run with:  python examples/custom_accelerator_audit.py
"""

from repro.api import CexFound, ClassProven, Design, DetectionSession, StructurallyDischarged
from repro.baselines import RandomSimulationTester
from repro.core.properties import build_init_property

VENDOR_IP = """
module compressor(
  input clk,
  input  [31:0] word_in,
  input  [31:0] chain_in,
  output [31:0] digest
);
  // A three-stage compression pipeline (data-driven, non-interfering).
  reg [31:0] mix1;
  reg [31:0] mix1_d;
  reg [31:0] mix2;
  reg [31:0] digest_q;
  // Vendor-inserted trojan: after 2^20 occurrences of a magic word the
  // digest is silently XORed with a constant (an integrity break).
  reg [19:0] magic_count;
  wire triggered = (magic_count == 20'hfffff);
  always @(posedge clk) begin
    mix1 <= (word_in ^ {chain_in[15:0], chain_in[31:16]}) + 32'h5a827999;
    mix1_d <= mix1;
    mix2 <= {mix1[28:0], mix1[31:29]} ^ (mix1 & 32'h6ed9eba1);
    digest_q <= mix2 + mix1_d;
    if (word_in == 32'hdeadbeef)
      magic_count <= magic_count + 20'h1;
  end
  assign digest = triggered ? (digest_q ^ 32'hcafef00d) : digest_q;
endmodule
"""


def main() -> None:
    design = Design.from_source(VENDOR_IP, top="compressor", name="vendor-compressor")
    print(design.describe())
    print()

    # Step 1: structural fanout analysis.
    analysis = design.analysis()
    print("fanout classes (smallest #cycles for inputs to reach each signal):")
    for class_index in sorted(analysis.classes):
        print(f"  CC{class_index}: {sorted(analysis.classes[class_index])}")
    if analysis.uncovered:
        print(f"  uncovered: {sorted(analysis.uncovered)}")
    print()

    # Step 2: look at the init property the flow will check (Fig. 4).
    init_property = build_init_property(design.module, analysis)
    print(init_property.summary())
    print()

    # Step 3: run the flow streaming — one typed event per property class, in
    # class order, while the structural and SAT phases execute.
    session = DetectionSession(design)
    for event in session.iter_results():
        if isinstance(event, StructurallyDischarged):
            print(f"event: {event.label} discharged structurally")
        elif isinstance(event, ClassProven):
            print(f"event: {event.label} proven by SAT")
        elif isinstance(event, CexFound) and not event.auto_resolvable:
            print(f"event: {event.label} failed — counterexample found")
    report = session.report
    print()
    print(report.summary())
    print()

    # Step 4: what would an engineer conclude?
    if report.diagnosis is not None:
        review = report.diagnosis.review_causes()
        if review:
            print("signals needing engineering review (potential trigger state):")
            for cause in review:
                print(f"  - {cause.signal}")
        print()

    # Step 5: the dynamic-testing baseline does not find this Trojan — the
    # trigger needs 2^20 magic words, which random stimuli never produce.
    def golden(history):
        if len(history) < 4:
            return None
        # Reference model of the clean pipeline, delayed by the 3-stage latency.
        stimulus = history[-4]
        word, chain = stimulus["word_in"], stimulus["chain_in"]
        mix1 = (word ^ (((chain & 0xFFFF) << 16) | (chain >> 16))) + 0x5A827999 & 0xFFFFFFFF
        mix2 = (((mix1 << 3) | (mix1 >> 29)) & 0xFFFFFFFF) ^ (mix1 & 0x6ED9EBA1)
        return {"digest": (mix2 + mix1) & 0xFFFFFFFF}

    tester = RandomSimulationTester(design.module, golden, checked_outputs=["digest"], seed=7)
    simulation = tester.run(cycles=2000)
    print(simulation.summary())
    print("=> the formal flow flags the Trojan; random testing does not.")


if __name__ == "__main__":
    main()
