#!/usr/bin/env python3
"""Detect the AES-T1400 Trojan (the worked example of Fig. 6 in the paper).

The benchmark wraps a fully pipelined AES-128 core with a Trojan whose
trigger is a 4-state FSM observing a specific plaintext sequence and whose
payload leaks key material through the switching activity of a shift register
(a power side channel).  The script

1. loads the regenerated Trust-Hub-style benchmark,
2. shows that the design still encrypts correctly (the Trojan is dormant),
3. runs the detection flow and prints the failing property, the
   counterexample and its diagnosis.

Run with:  python examples/detect_aes_trojan.py
"""

from repro.api import CexFound, Design, DetectionSession
from repro.crypto.aes_ref import aes128_encrypt_block
from repro.sim import Simulator
from repro.trusthub.aes_core import AES_LATENCY


def show_functional_behaviour(module) -> None:
    """The infested core still passes a functional test — the Trojan is stealthy."""
    plaintext = 0x3243F6A8885A308D313198A2E0370734
    key = 0x2B7E151628AED2A6ABF7158809CF4F3C
    simulator = Simulator(module)
    values = {}
    for _ in range(AES_LATENCY + 1):
        values = simulator.step({"state": plaintext, "key": key})
    expected = aes128_encrypt_block(plaintext, key)
    status = "matches" if values["out"] == expected else "DIFFERS FROM"
    print(f"functional check: RTL ciphertext {status} the FIPS-197 reference")
    print(f"  ciphertext = {values['out']:032x}")
    print()


def main() -> None:
    design = Design.from_benchmark("AES-T1400")
    print(f"benchmark: {design.name}")
    print(f"description: {design.description}")
    print()

    show_functional_behaviour(design.module)

    # Stream the run: the CexFound event fires while the scheduler is still
    # inside the SAT phase, before the final report exists.
    session = DetectionSession(design)
    for event in session.iter_results():
        if isinstance(event, CexFound) and not event.auto_resolvable:
            print(f"streaming event: counterexample found by {event.label}")
    report = session.report

    print()
    print(report.summary())
    print()
    print("the paper reports this Trojan as detected by the init property")
    print(f"this run detected it by:                     {report.detected_by}")


if __name__ == "__main__":
    main()
