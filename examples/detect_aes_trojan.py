#!/usr/bin/env python3
"""Detect the AES-T1400 Trojan (the worked example of Fig. 6 in the paper).

The benchmark wraps a fully pipelined AES-128 core with a Trojan whose
trigger is a 4-state FSM observing a specific plaintext sequence and whose
payload leaks key material through the switching activity of a shift register
(a power side channel).  The script

1. loads the regenerated Trust-Hub-style benchmark,
2. shows that the design still encrypts correctly (the Trojan is dormant),
3. runs the detection flow and prints the failing property, the
   counterexample and its diagnosis.

Run with:  python examples/detect_aes_trojan.py
"""

from repro.core import DetectionConfig, detect_trojans
from repro.crypto.aes_ref import aes128_encrypt_block
from repro.sim import Simulator
from repro.trusthub import load_design
from repro.trusthub.aes_core import AES_LATENCY


def show_functional_behaviour(module) -> None:
    """The infested core still passes a functional test — the Trojan is stealthy."""
    plaintext = 0x3243F6A8885A308D313198A2E0370734
    key = 0x2B7E151628AED2A6ABF7158809CF4F3C
    simulator = Simulator(module)
    values = {}
    for _ in range(AES_LATENCY + 1):
        values = simulator.step({"state": plaintext, "key": key})
    expected = aes128_encrypt_block(plaintext, key)
    status = "matches" if values["out"] == expected else "DIFFERS FROM"
    print(f"functional check: RTL ciphertext {status} the FIPS-197 reference")
    print(f"  ciphertext = {values['out']:032x}")
    print()


def main() -> None:
    design = load_design("AES-T1400")
    print(f"benchmark: {design.name} — payload {design.payload}, trigger {design.trigger}")
    print(f"description: {design.description}")
    print()

    module = design.elaborate()
    show_functional_behaviour(module)

    config = DetectionConfig(inputs=list(design.data_inputs))
    report = detect_trojans(module, config)

    print(report.summary())
    print()
    print(f"the paper reports this Trojan as detected by: {design.expected_detection}")
    print(f"this run detected it by:                      {report.detected_by}")


if __name__ == "__main__":
    main()
