#!/usr/bin/env python3
"""Prove the absence of sequential Trojans in the HT-free accelerators.

For every Trojan-free benchmark (AES, BasicRSA, RS232) the script runs the
full iterative flow — init property, one fanout property per class, and the
final coverage check — and prints the per-property proof effort.  The RSA and
UART designs need a few waivers for legitimate history-keeping control
registers, mirroring the spurious counterexamples reported in Sec. VI of the
paper; the script shows the flow once without and once with those waivers.

Run with:  python examples/verify_clean_design.py
"""

from repro.api import Design, DetectionSession
from repro.trusthub import design_names


def verify(name: str) -> None:
    design = Design.from_benchmark(name)
    print(f"=== {name} ===")

    # First run: no waivers.  Self-dependent control registers (if any) show
    # up as counterexamples that the engineer must review.
    raw_config = design.default_config(include_recommended_waivers=False)
    raw = DetectionSession(design, config=raw_config).run()
    print(f"  without waivers: {raw.verdict.value}"
          + (f" ({raw.detected_by})" if raw.detected_by else ""))
    if raw.diagnosis is not None and not raw.is_secure:
        for cause in raw.diagnosis.causes:
            print(f"    cause: {cause.describe()}")

    # Second run: with the waivers an engineer adds after reviewing the
    # counterexamples (legitimate cross-computation state, cf. Sec. V-B).
    if design.recommended_waivers:
        waived = DetectionSession(design, config=design.default_config()).run()
        print(f"  with {len(design.recommended_waivers)} waiver(s):  {waived.verdict.value}")
        report = waived
    else:
        report = raw

    print(f"  properties checked: {report.properties_checked()}, "
          f"max proof runtime {report.max_property_runtime():.2f} s, "
          f"total {report.total_runtime_seconds:.2f} s")
    if report.coverage is not None:
        print(f"  {report.coverage.summary()}")
    print()


def main() -> None:
    for name in design_names(with_trojan=False):
        verify(name)


if __name__ == "__main__":
    main()
