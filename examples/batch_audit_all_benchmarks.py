#!/usr/bin/env python3
"""Audit every bundled Trust-Hub-style benchmark in one batch session.

This demonstrates :class:`repro.api.BatchSession` — the multi-design audit
surface: one shared configuration template, one process, per-design reports
aggregated into a :class:`repro.api.BatchReport` with cumulative
solver-reuse statistics.  A subscriber on the batch's event bus renders a
live one-line progress ticker per design as its classes settle.

Run with:  python examples/batch_audit_all_benchmarks.py [family ...]

where the optional families (AES, BasicRSA, RS232) restrict the batch; with
no arguments the whole catalogue is audited (this takes a while — every
design runs the complete iterative flow).
"""

import sys

from repro.api import BatchSession, RunFinished, RunStarted
from repro.trusthub import design_names, families


def progress(event) -> None:
    if isinstance(event, RunStarted):
        print(f"  auditing {event.design} "
              f"({event.scheduled_classes} property classes) ...", flush=True)
    elif isinstance(event, RunFinished):
        print(f"    -> {event.report.verdict.value}"
              + (f" ({event.report.detected_by})" if event.report.detected_by else ""))


def main() -> None:
    selected = sys.argv[1:] or families()
    unknown = [family for family in selected if family not in families()]
    if unknown:
        raise SystemExit(f"unknown families: {', '.join(unknown)}; "
                         f"available: {', '.join(families())}")

    names = [name for family in selected for name in design_names(family=family)]
    print(f"batch-auditing {len(names)} design(s) from {', '.join(selected)}")

    batch = BatchSession(names)
    batch.subscribe(progress)
    report = batch.run()

    print()
    print(report.summary())

    flagged = report.flagged_designs()
    clean = set(design_names(with_trojan=False))
    missed = [name for name in names if name not in clean and name not in flagged]
    print()
    print(f"designs flagged: {len(flagged)} / {len(names)}")
    if missed:
        print(f"trojans MISSED by the flow: {', '.join(missed)}")
    else:
        print("every Trojan-infested design in the selection was flagged.")


if __name__ == "__main__":
    main()
