#!/usr/bin/env python3
"""Replay a formal counterexample in simulation and export VCD waveforms.

Workflow demonstrated here (the way a verification engineer would consume a
finding of the detection flow):

1. run the golden-free detection flow on the AES-T2500 benchmark (Fig. 7 of
   the paper: cycle-counter trigger, ciphertext-LSB-flip payload) through a
   :class:`repro.api.DetectionSession`,
2. replay the counterexample on two RTL simulator instances to confirm the
   divergence outside the formal engine,
3. dump both instances' waveforms as VCD files for inspection in any
   waveform viewer (GTKWave etc.).

Run with:  python examples/export_counterexample_waveform.py [output-dir]
"""

import sys
from pathlib import Path

from repro.api import Design, DetectionSession
from repro.core import replay_counterexample
from repro.sim import write_vcd


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    output_dir.mkdir(parents=True, exist_ok=True)

    design = Design.from_benchmark("AES-T2500")
    session = DetectionSession(design)
    report = session.run()
    module = design.module

    print(report.summary())
    if report.counterexample is None:
        print("no counterexample to replay — nothing to export")
        return

    outcome = report.failing_outcome()
    replay = replay_counterexample(module, outcome.result.prop, report.counterexample, extra_cycles=2)
    print()
    print(replay.summary())

    watched = sorted(
        {"state", "key", "out", "tj_cyc_count"} & set(module.signals)
        | set(replay.traces[0].snapshots[0]) & set(module.registers)
    )
    for instance, trace in replay.traces.items():
        path = output_dir / f"aes_t2500_instance{instance + 1}.vcd"
        with open(path, "w", encoding="utf-8") as handle:
            write_vcd(trace, module.signals, handle, signals=watched)
        print(f"wrote {path} ({len(trace)} cycles, {len(watched)} signals)")


if __name__ == "__main__":
    main()
